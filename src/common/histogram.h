// A simple fixed-bucket latency histogram for benchmark reporting.
#ifndef XFTL_COMMON_HISTOGRAM_H_
#define XFTL_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xftl {

// Records non-negative samples (typically nanoseconds) into power-of-two
// buckets and reports count/mean/percentiles.
class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // Linear interpolation within the containing bucket; p in [0, 100].
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t value);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace xftl

#endif  // XFTL_COMMON_HISTOGRAM_H_
