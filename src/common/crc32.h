// CRC-32C (Castagnoli) used to detect torn/corrupt pages in journal, WAL and
// mapping-table snapshots.
#ifndef XFTL_COMMON_CRC32_H_
#define XFTL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xftl {

// Computes CRC-32C of data[0, n), extending `init` (pass 0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

}  // namespace xftl

#endif  // XFTL_COMMON_CRC32_H_
