#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xftl {

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  int b = 64 - __builtin_clzll(value);
  return std::min(b, kNumBuckets - 1);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  uint64_t target = uint64_t(p / 100.0 * double(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (seen + buckets_[i] >= target) {
      // Interpolate inside bucket [2^(i-1), 2^i).
      double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      double hi = std::ldexp(1.0, i);
      double frac = buckets_[i] == 0
                        ? 0.0
                        : double(target - seen) / double(buckets_[i]);
      // Interpolation can overshoot the true extremes of the bucket.
      return std::clamp(lo + frac * (hi - lo), double(min()), double(max_));
    }
    seen += buckets_[i];
  }
  return double(max_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << min()
     << " p50=" << Percentile(50) << " p99=" << Percentile(99)
     << " max=" << max_;
  return os.str();
}

}  // namespace xftl
