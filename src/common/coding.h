// Little-endian fixed-width and varint integer encode/decode helpers for
// on-"flash" formats (journal records, WAL frames, B-tree pages, inodes,
// mapping table snapshots) and the trace file format.
#ifndef XFTL_COMMON_CODING_H_
#define XFTL_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace xftl {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

// --- LEB128 varints (protobuf-style, 7 bits per byte) -----------------------
// A uint64 occupies at most 10 bytes; small values (the common case in trace
// records: op codes, short latencies, delta timestamps) occupy one.
inline constexpr size_t kMaxVarint64Bytes = 10;

// Appends the varint encoding of `v` to `dst`.
inline void PutVarint64(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(uint8_t(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(uint8_t(v));
}

// Decodes a varint from [p, limit); returns the byte past the encoding, or
// nullptr if the input is truncated or malformed (> 10 bytes).
inline const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                                  uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift < 70 && p < limit; shift += 7) {
    uint8_t byte = *p++;
    result |= uint64_t(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;
}

// --- zigzag signed varints --------------------------------------------------
// Maps small-magnitude signed values to small unsigned varints: 0,-1,1,-2,...
// -> 0,1,2,3,... Used where a delta can legitimately be negative — e.g. trace
// timestamps once the host scheduler is allowed to rewind the shared clock.
inline uint64_t ZigzagEncode(int64_t v) {
  return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return int64_t(v >> 1) ^ -int64_t(v & 1);
}

inline void PutSignedVarint64(std::vector<uint8_t>* dst, int64_t v) {
  PutVarint64(dst, ZigzagEncode(v));
}
inline const uint8_t* GetSignedVarint64(const uint8_t* p, const uint8_t* limit,
                                        int64_t* v) {
  uint64_t u = 0;
  p = GetVarint64(p, limit, &u);
  if (p != nullptr) *v = ZigzagDecode(u);
  return p;
}

}  // namespace xftl

#endif  // XFTL_COMMON_CODING_H_
