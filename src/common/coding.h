// Little-endian fixed-width integer encode/decode helpers for on-"flash"
// formats (journal records, WAL frames, B-tree pages, inodes, mapping table
// snapshots).
#ifndef XFTL_COMMON_CODING_H_
#define XFTL_COMMON_CODING_H_

#include <cstdint>
#include <cstring>

namespace xftl {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace xftl

#endif  // XFTL_COMMON_CODING_H_
