#include "common/logging.h"

#include <cstring>

namespace xftl {
namespace internal_logging {
namespace {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kDebug:
      return "D";
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

Severity& MinLogSeverity() {
  static Severity min_severity = Severity::kWarning;
  return min_severity;
}

void LogMessage::Flush() {
  std::cerr << "[" << SeverityName(severity_) << " " << Basename(file_) << ":"
            << line_ << "] " << stream_.str() << std::endl;
}

}  // namespace internal_logging
}  // namespace xftl
