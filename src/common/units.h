// Size and time unit helpers used throughout the simulator.
#ifndef XFTL_COMMON_UNITS_H_
#define XFTL_COMMON_UNITS_H_

#include <cstdint>

namespace xftl {

// Simulated time is measured in nanoseconds.
using SimNanos = uint64_t;

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

constexpr SimNanos Nanos(uint64_t n) { return n; }
constexpr SimNanos Micros(uint64_t n) { return n * 1000ull; }
constexpr SimNanos Millis(uint64_t n) { return n * 1000000ull; }
constexpr SimNanos Seconds(uint64_t n) { return n * 1000000000ull; }

constexpr double NanosToMillis(SimNanos ns) { return double(ns) / 1e6; }
constexpr double NanosToSeconds(SimNanos ns) { return double(ns) / 1e9; }

}  // namespace xftl

#endif  // XFTL_COMMON_UNITS_H_
