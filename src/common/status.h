// Status and StatusOr<T>: exception-free error propagation in the style of
// Arrow / RocksDB. Every fallible operation in this library returns a Status
// (or StatusOr when there is a value to return).
#ifndef XFTL_COMMON_STATUS_H_
#define XFTL_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace xftl {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,   // no free blocks, table full, disk full, ...
  kFailedPrecondition,  // operation illegal in current state
  kCorruption,          // checksum mismatch, torn page, bad format
  kIoError,             // simulated device failure
  kNotSupported,
  kAborted,  // transaction aborted (e.g., by recovery)
  kBusy,     // lock held / conflicting transaction
};

// Returns a short name like "InvalidArgument" for diagnostics.
const char* StatusCodeToString(StatusCode code);

// A Status is either OK (cheap, no allocation) or an error code plus a
// human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  // "OK" or "Corruption: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T> holds either a T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl
      : rep_(std::move(status)) {
    DCHECK(!std::get<Status>(rep_).ok());
  }
  StatusOr(T value)  // NOLINT: implicit by design
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates a non-OK status to the caller.
#define XFTL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::xftl::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// assigns the value to `lhs`. `lhs` may include a declaration.
#define XFTL_ASSIGN_OR_RETURN(lhs, expr)                     \
  XFTL_ASSIGN_OR_RETURN_IMPL_(                               \
      XFTL_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define XFTL_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define XFTL_STATUS_CONCAT_(a, b) XFTL_STATUS_CONCAT_IMPL_(a, b)
#define XFTL_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace xftl

#endif  // XFTL_COMMON_STATUS_H_
