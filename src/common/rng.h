// Deterministic pseudo-random number generation for workloads and tests.
// xoshiro256** — fast, high quality, reproducible across platforms.
#ifndef XFTL_COMMON_RNG_H_
#define XFTL_COMMON_RNG_H_

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace xftl {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to spread the seed over the full state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    DCHECK_GT(n, 0u);
    return Next() % n;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    DCHECK_LE(lo, hi);
    return lo + int64_t(Uniform(uint64_t(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return double(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // TPC-C NURand non-uniform random, per clause 2.1.6.
  int64_t NuRand(int64_t a, int64_t x, int64_t y, int64_t c) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

  // Random lowercase alphanumeric string of length n.
  std::string AlphaString(size_t n) {
    static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(n, ' ');
    for (auto& ch : s) ch = kChars[Uniform(sizeof(kChars) - 1)];
    return s;
  }

  // Fills a buffer with random bytes.
  void FillBytes(void* data, size_t n) {
    auto* p = static_cast<uint8_t*>(data);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      uint64_t v = Next();
      __builtin_memcpy(p + i, &v, 8);
    }
    if (i < n) {
      uint64_t v = Next();
      __builtin_memcpy(p + i, &v, n - i);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace xftl

#endif  // XFTL_COMMON_RNG_H_
