// A discrete-event simulated clock. All latencies in the system (flash
// operations, bus transfers, host syscall overheads) advance this clock;
// elapsed-time results reported by the benchmarks are differences of
// SimClock::Now() values.
#ifndef XFTL_COMMON_SIM_CLOCK_H_
#define XFTL_COMMON_SIM_CLOCK_H_

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace xftl {

class SimClock {
 public:
  SimClock() = default;

  // Non-copyable: a clock is shared by reference across the whole stack.
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimNanos Now() const { return now_; }

  // Moves time forward by `ns`.
  void Advance(SimNanos ns) { now_ += ns; }

  // Moves time forward to `t` if `t` is in the future; never moves backward.
  void AdvanceTo(SimNanos t) { now_ = std::max(now_, t); }

  // Resets to zero (tests only).
  void Reset() { now_ = 0; }

 private:
  SimNanos now_ = 0;
};

}  // namespace xftl

#endif  // XFTL_COMMON_SIM_CLOCK_H_
