// A discrete-event simulated clock. All latencies in the system (flash
// operations, bus transfers, host syscall overheads) advance this clock;
// elapsed-time results reported by the benchmarks are differences of
// SimClock::Now() values.
//
// Two kinds of time movement, by convention across the whole stack:
//   * Advance(ns)  — an occupancy charge: the issuing component (host CPU,
//     SATA wire, ECC engine) is busy for `ns` and nothing else can use it.
//   * AdvanceTo(t) — a completion wait: the issuer blocks until a device-side
//     event (flash program retire, NCQ slot, barrier drain) that has already
//     been scheduled on some resource's busy-until timeline.
// The distinction is what makes a concurrent host simulable on one clock:
// the session scheduler (src/host/scheduler) measures the waited() share of
// a step and rewinds the clock over it, so waits from different sessions
// overlap in simulated time while occupancy charges serialize.
//
// Ownership: any component sharing the clock may move time forward — that is
// how the simulation runs — but moving it backward (Rewind) or zeroing it
// (Reset) is destructive to everyone else's notion of time and is therefore
// restricted to at most one registered scheduler token. N devices sharing
// one clock cannot drift apart: there is exactly one now_.
#ifndef XFTL_COMMON_SIM_CLOCK_H_
#define XFTL_COMMON_SIM_CLOCK_H_

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace xftl {

class SimClock {
 public:
  SimClock() = default;

  // Non-copyable: a clock is shared by reference across the whole stack.
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimNanos Now() const { return now_; }

  // Moves time forward by `ns` (an occupancy charge).
  void Advance(SimNanos ns) { now_ += ns; }

  // Moves time forward to `t` if `t` is in the future; never moves backward.
  // The skipped span counts as waiting (see waited()).
  void AdvanceTo(SimNanos t) {
    if (t > now_) {
      waited_ += t - now_;
      now_ = t;
    }
  }

  // Cumulative nanoseconds skipped by AdvanceTo() — time spent blocked on
  // device-side completions rather than occupying the host. The session
  // scheduler diffs this around a dispatch to split busy from waiting.
  SimNanos waited() const { return waited_; }

  // --- scheduler ownership -------------------------------------------------
  // At most one scheduler may hold the rewind privilege at a time. `token`
  // is an opaque identity (the scheduler's `this`); a second AcquireRewind
  // without a release is a bug — two schedulers interleaving rewinds on one
  // clock would corrupt each other's timelines.
  void AcquireRewind(const void* token) {
    CHECK(rewind_owner_ == nullptr);
    CHECK(token != nullptr);
    rewind_owner_ = token;
  }
  void ReleaseRewind(const void* token) {
    CHECK(rewind_owner_ == token);
    rewind_owner_ = nullptr;
  }

  // Moves time BACKWARD to `t` (<= now). Only the registered scheduler may
  // do this: it models releasing the host at the end of a dispatch's
  // occupancy while the device-side tail of the work keeps cooking on
  // busy-until timelines that remain in the future.
  void Rewind(SimNanos t, const void* token) {
    CHECK(rewind_owner_ != nullptr && rewind_owner_ == token)
        << "Rewind by a component that does not own the clock";
    CHECK_LE(t, now_);
    now_ = t;
  }

  // Resets to zero (tests only). Illegal while a scheduler holds the clock.
  void Reset() {
    CHECK(rewind_owner_ == nullptr) << "Reset under an attached scheduler";
    now_ = 0;
    waited_ = 0;
  }

 private:
  SimNanos now_ = 0;
  SimNanos waited_ = 0;
  const void* rewind_owner_ = nullptr;
};

}  // namespace xftl

#endif  // XFTL_COMMON_SIM_CLOCK_H_
