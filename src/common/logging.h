// Minimal logging and assertion macros (glog-flavoured, header-only).
//
//   LOG(INFO) << "loaded " << n << " pages";
//   CHECK(ptr != nullptr) << "null page";
//   CHECK_EQ(a, b);    DCHECK_LT(i, size);
//
// CHECK failures abort the process; DCHECKs compile out in NDEBUG builds.
#ifndef XFTL_COMMON_LOGGING_H_
#define XFTL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace xftl {
namespace internal_logging {

enum class Severity { kDebug = 0, kInfo, kWarning, kError, kFatal };

// Process-wide minimum severity printed to stderr. Tests raise it to silence
// expected warnings.
Severity& MinLogSeverity();

class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    if (severity_ >= MinLogSeverity() || severity_ == Severity::kFatal) {
      Flush();
    }
    if (severity_ == Severity::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  void Flush();

  Severity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed message when a DCHECK is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

struct Voidify {
  // Lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
  void operator&(NullStream&) {}
};

}  // namespace internal_logging
}  // namespace xftl

#define XFTL_LOG_DEBUG ::xftl::internal_logging::Severity::kDebug
#define XFTL_LOG_INFO ::xftl::internal_logging::Severity::kInfo
#define XFTL_LOG_WARNING ::xftl::internal_logging::Severity::kWarning
#define XFTL_LOG_ERROR ::xftl::internal_logging::Severity::kError
#define XFTL_LOG_FATAL ::xftl::internal_logging::Severity::kFatal

#define LOG(severity)                                                     \
  ::xftl::internal_logging::LogMessage(XFTL_LOG_##severity, __FILE__, \
                                       __LINE__)                          \
      .stream()

#define CHECK(condition)                                             \
  (condition) ? (void)0                                              \
              : ::xftl::internal_logging::Voidify() &                \
                    ::xftl::internal_logging::LogMessage(            \
                        XFTL_LOG_FATAL, __FILE__, __LINE__)          \
                            .stream()                                \
                        << "Check failed: " #condition " "

#define XFTL_CHECK_OP(name, op, a, b)                                 \
  CHECK((a)op(b)) << "(" #a " " #op " " #b "), with lhs=" << (a)      \
                  << " rhs=" << (b) << ". "

#define CHECK_EQ(a, b) XFTL_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) XFTL_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) XFTL_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) XFTL_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) XFTL_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) XFTL_CHECK_OP(GE, >=, a, b)

#ifdef NDEBUG
#define XFTL_DCHECK_ACTIVE 0
#else
#define XFTL_DCHECK_ACTIVE 1
#endif

#if XFTL_DCHECK_ACTIVE
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define XFTL_NULL_STREAM_                                  \
  true ? (void)0                                           \
       : ::xftl::internal_logging::Voidify() &             \
             *(new ::xftl::internal_logging::NullStream())
#define DCHECK(condition) \
  true ? (void)0 : ::xftl::internal_logging::Voidify() & LOG(DEBUG)
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#endif

#endif  // XFTL_COMMON_LOGGING_H_
