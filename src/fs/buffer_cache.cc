#include "fs/buffer_cache.h"

namespace xftl::fs {

StatusOr<BufferCache::Entry*> BufferCache::Get(uint64_t page,
                                               storage::TxId tid) {
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    hits_++;
    lru_.erase(it->second.lru_it);
    lru_.push_front(page);
    it->second.lru_it = lru_.begin();
    return &it->second;
  }
  misses_++;
  XFTL_RETURN_IF_ERROR(EvictIfNeeded());
  Entry& e = entries_[page];
  e.page = page;
  e.data.resize(dev_->page_size());
  Status read = dev_->TxRead(tid, page, e.data.data());
  if (!read.ok()) {
    // The entry was never linked into the LRU; leaving it cached would hand
    // a later hit a singular lru_it. Failed reads (a degraded array, a dead
    // link) must be retryable, so drop it and re-read next time.
    entries_.erase(page);
    return read;
  }
  lru_.push_front(page);
  e.lru_it = lru_.begin();
  return &e;
}

StatusOr<BufferCache::Entry*> BufferCache::GetZeroed(uint64_t page) {
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    XFTL_RETURN_IF_ERROR(EvictIfNeeded());
    Entry& e = entries_[page];
    e.page = page;
    e.data.assign(dev_->page_size(), 0);
    lru_.push_front(page);
    e.lru_it = lru_.begin();
    return &e;
  }
  std::fill(it->second.data.begin(), it->second.data.end(), 0);
  lru_.erase(it->second.lru_it);
  lru_.push_front(page);
  it->second.lru_it = lru_.begin();
  return &it->second;
}

void BufferCache::MarkDirty(Entry* e, bool metadata, storage::TxId tid,
                            uint32_t owner, bool ts_only) {
  // The bit survives only while every dirtying touch is timestamp-only.
  e->ts_only = ts_only && (!e->dirty || e->ts_only);
  e->dirty = true;
  e->metadata = e->metadata || metadata;
  e->tid = tid;
  if (owner != ~0u) e->owner = owner;
  // Journaling rule: dirty metadata must not reach its home location before
  // the journal commit; pin it. (Full-journal mode pins data via the caller
  // passing metadata=true semantics through its own writeback policy.)
  if (metadata) e->pinned = true;
}

void BufferCache::Discard(uint64_t page) {
  auto it = entries_.find(page);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void BufferCache::ForEachDirty(const std::function<void(Entry*)>& fn) {
  for (auto& [page, e] : entries_) {
    if (e.dirty) fn(&e);
  }
}

Status BufferCache::EvictIfNeeded() {
  while (entries_.size() >= capacity_) {
    // Scan from the LRU tail for an evictable page (clean, or dirty and not
    // pinned). Pinned pages make the cache grow instead.
    uint64_t victim = ~0ull;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& e = entries_.at(*it);
      if (!e.pinned) {
        victim = *it;
        break;
      }
    }
    if (victim == ~0ull) return Status::OK();  // everything pinned: grow
    Entry& e = entries_.at(victim);
    if (e.dirty) {
      // Steal: an uncommitted page leaves the cache early.
      XFTL_RETURN_IF_ERROR(writeback_(e.page, e.data.data(), e.tid));
      steals_++;
    }
    lru_.erase(e.lru_it);
    entries_.erase(victim);
  }
  return Status::OK();
}

}  // namespace xftl::fs
