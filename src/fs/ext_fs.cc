#include "fs/ext_fs.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace xftl::fs {

namespace {
constexpr uint32_t kPtrSize = 4;
}  // namespace

const char* JournalModeName(JournalMode mode) {
  switch (mode) {
    case JournalMode::kOrdered:
      return "ordered";
    case JournalMode::kFull:
      return "full";
    case JournalMode::kOff:
      return "off";
  }
  return "?";
}

ExtFs::ExtFs(storage::TxBlockDevice* dev, const FsOptions& options,
             SimClock* clock)
    : dev_(dev), options_(options), clock_(clock) {
  cache_ = std::make_unique<BufferCache>(
      dev_, options_.cache_pages,
      [this](uint64_t page, const uint8_t* data, storage::TxId tid) {
        return WritebackForEviction(page, data, tid);
      });
}

Status ExtFs::WritebackForEviction(uint64_t page, const uint8_t* data,
                                   storage::TxId tid) {
  // The steal path: a dirty, unpinned page leaves the cache before its
  // transaction commits. On X-FTL it carries the transaction id and remains
  // rollbackable; on a journaling mode it is ordinary data and may be
  // written in place.
  stats_.data_page_writes++;
  if (options_.journal_mode == JournalMode::kOff && tid != 0) {
    return dev_->TxWrite(tid, page, data);
  }
  return dev_->Write(page, data);
}

// ---------------------------------------------------------------------------
// mkfs / mount
// ---------------------------------------------------------------------------

Status ExtFs::Mkfs(storage::TxBlockDevice* dev, const FsOptions& options) {
  const uint32_t page_size = dev->page_size();
  const uint64_t num_pages = dev->num_pages();
  CHECK_GE(page_size, 512u);

  Superblock sb;
  sb.page_size = page_size;
  sb.num_pages = num_pages;
  sb.inode_count = options.inode_count;
  sb.inode_start = 1;
  sb.inode_pages =
      (options.inode_count * kInodeSize + page_size - 1) / page_size;
  sb.bitmap_start = sb.inode_start + sb.inode_pages;
  sb.bitmap_pages =
      uint32_t((num_pages + uint64_t(page_size) * 8 - 1) / (uint64_t(page_size) * 8));
  sb.journal_start = sb.bitmap_start + sb.bitmap_pages;
  sb.journal_pages = options.journal_pages;
  sb.data_start = sb.journal_start + sb.journal_pages;
  if (sb.data_start + 16 >= num_pages) {
    return Status::InvalidArgument("device too small for file system layout");
  }

  std::vector<uint8_t> buf(page_size, 0);
  sb.EncodeTo(buf.data());
  XFTL_RETURN_IF_ERROR(dev->Write(0, buf.data()));

  // Inode table: all free except the root directory.
  for (uint32_t p = 0; p < sb.inode_pages; ++p) {
    std::memset(buf.data(), 0, page_size);
    if (p == 0) {
      Inode root;
      root.mode = InodeMode::kDir;
      root.nlink = 1;
      root.EncodeTo(buf.data());
    }
    XFTL_RETURN_IF_ERROR(dev->Write(sb.inode_start + p, buf.data()));
  }

  // Bitmap: metadata region marked allocated.
  for (uint32_t p = 0; p < sb.bitmap_pages; ++p) {
    std::memset(buf.data(), 0, page_size);
    uint64_t first_bit = uint64_t(p) * page_size * 8;
    for (uint64_t bit = 0; bit < uint64_t(page_size) * 8; ++bit) {
      uint64_t page = first_bit + bit;
      if (page >= num_pages) break;
      if (page < sb.data_start) buf[bit / 8] |= uint8_t(1u << (bit % 8));
    }
    XFTL_RETURN_IF_ERROR(dev->Write(sb.bitmap_start + p, buf.data()));
  }
  // Invalidate any stale journal descriptor from a previous file system.
  std::memset(buf.data(), 0, page_size);
  XFTL_RETURN_IF_ERROR(dev->Write(sb.journal_start, buf.data()));
  return dev->FlushBarrier();
}

StatusOr<std::unique_ptr<ExtFs>> ExtFs::Mount(storage::TxBlockDevice* dev,
                                              const FsOptions& options,
                                              SimClock* clock) {
  if (options.journal_mode == JournalMode::kOff &&
      !dev->SupportsTransactions()) {
    return Status::InvalidArgument(
        "journaling off requires a transactional (X-FTL) device");
  }
  std::vector<uint8_t> buf(dev->page_size());
  XFTL_RETURN_IF_ERROR(dev->Read(0, buf.data()));
  Superblock sb;
  sb.DecodeFrom(buf.data());
  if (sb.magic != kSuperMagic || sb.page_size != dev->page_size()) {
    return Status::Corruption("bad superblock");
  }

  auto fs = std::unique_ptr<ExtFs>(new ExtFs(dev, options, clock));
  fs->sb_ = sb;
  fs->alloc_hint_ = sb.data_start;
  if (options.journal_mode != JournalMode::kOff) {
    fs->journal_ = std::make_unique<Journal>(dev, sb.journal_start,
                                             sb.journal_pages);
    XFTL_RETURN_IF_ERROR(fs->journal_->Recover());
  }
  return fs;
}

Status ExtFs::Unmount() {
  XFTL_RETURN_IF_ERROR(SyncAll());
  return Status::OK();
}

void ExtFs::ResetStats() {
  stats_ = FsStats{};
  if (journal_) journal_->ResetStats();
}

// ---------------------------------------------------------------------------
// inode / bitmap
// ---------------------------------------------------------------------------

StatusOr<Inode> ExtFs::LoadInode(Ino ino) {
  if (ino >= sb_.inode_count) return Status::OutOfRange("bad inode");
  uint32_t per_page = sb_.page_size / kInodeSize;
  uint64_t page = sb_.inode_start + ino / per_page;
  XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
  Inode inode;
  inode.DecodeFrom(e->data.data() + size_t(ino % per_page) * kInodeSize);
  return inode;
}

Status ExtFs::StoreInode(Ino ino, const Inode& inode) {
  uint32_t per_page = sb_.page_size / kInodeSize;
  uint64_t page = sb_.inode_start + ino / per_page;
  XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
  uint8_t* slot = e->data.data() + size_t(ino % per_page) * kInodeSize;
  // An update that moves nothing but mtime (bytes 72..79) is the fdatasync
  // carve-out: the page gets dirty, but a datasync may defer it.
  uint8_t fresh[kInodeSize];
  inode.EncodeTo(fresh);
  bool ts_only = std::memcmp(fresh, slot, 72) == 0 &&
                 std::memcmp(fresh + 80, slot + 80, kInodeSize - 80) == 0;
  std::memcpy(slot, fresh, kInodeSize);
  cache_->MarkDirty(e, /*metadata=*/true, TidFor(ino), ~0u, ts_only);
  return Status::OK();
}

StatusOr<Ino> ExtFs::AllocInode(InodeMode mode) {
  uint32_t per_page = sb_.page_size / kInodeSize;
  for (Ino ino = 1; ino < sb_.inode_count; ++ino) {
    uint64_t page = sb_.inode_start + ino / per_page;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
    const uint8_t* slot = e->data.data() + size_t(ino % per_page) * kInodeSize;
    if (InodeMode(DecodeFixed32(slot)) == InodeMode::kFree) {
      Inode inode;
      inode.mode = mode;
      inode.nlink = 1;
      inode.mtime = clock_->Now();
      inode.EncodeTo(e->data.data() + size_t(ino % per_page) * kInodeSize);
      cache_->MarkDirty(e, /*metadata=*/true, TidFor(ino));
      return ino;
    }
  }
  return Status::ResourceExhausted("out of inodes");
}

StatusOr<uint32_t> ExtFs::AllocPage() {
  const uint64_t bits_per_page = uint64_t(sb_.page_size) * 8;
  for (uint64_t scanned = 0; scanned < sb_.num_pages; ++scanned) {
    uint64_t page = sb_.data_start +
                    (alloc_hint_ - sb_.data_start + scanned) %
                        (sb_.num_pages - sb_.data_start);
    uint64_t bpage = sb_.bitmap_start + page / bits_per_page;
    uint64_t bit = page % bits_per_page;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(bpage));
    if ((e->data[bit / 8] & (1u << (bit % 8))) == 0) {
      e->data[bit / 8] |= uint8_t(1u << (bit % 8));
      cache_->MarkDirty(e, /*metadata=*/true, 0);
      alloc_hint_ = page + 1;
      return uint32_t(page);
    }
  }
  return Status::ResourceExhausted("file system full");
}

Status ExtFs::FreePage(uint32_t page) {
  const uint64_t bits_per_page = uint64_t(sb_.page_size) * 8;
  uint64_t bpage = sb_.bitmap_start + page / bits_per_page;
  uint64_t bit = page % bits_per_page;
  XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(bpage));
  e->data[bit / 8] &= uint8_t(~(1u << (bit % 8)));
  cache_->MarkDirty(e, /*metadata=*/true, 0);
  cache_->Discard(page);
  pending_trims_.push_back(page);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// file page mapping
// ---------------------------------------------------------------------------

StatusOr<uint32_t> ExtFs::FilePage(Ino ino, Inode* inode, uint64_t idx,
                                   bool alloc, bool* created) {
  if (created != nullptr) *created = false;
  const uint64_t ppp = sb_.page_size / kPtrSize;  // pointers per page
  storage::TxId tid = TidFor(ino);

  auto alloc_data_page = [&]() -> StatusOr<uint32_t> {
    XFTL_ASSIGN_OR_RETURN(uint32_t p, AllocPage());
    if (created != nullptr) *created = true;
    return p;
  };
  // Reads/updates pointer slot `slot_idx` inside pointer page `ptr_page`.
  auto through_ptr_page = [&](uint32_t ptr_page,
                              uint64_t slot_idx) -> StatusOr<uint32_t> {
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(ptr_page, tid));
    uint32_t p = DecodeFixed32(e->data.data() + slot_idx * kPtrSize);
    if (p == kNoPage && alloc) {
      XFTL_ASSIGN_OR_RETURN(p, alloc_data_page());
      EncodeFixed32(e->data.data() + slot_idx * kPtrSize, p);
      cache_->MarkDirty(e, /*metadata=*/true, tid);
    }
    return p;
  };
  // Allocates a zeroed pointer page.
  auto alloc_ptr_page = [&]() -> StatusOr<uint32_t> {
    XFTL_ASSIGN_OR_RETURN(uint32_t p, AllocPage());
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->GetZeroed(p));
    cache_->MarkDirty(e, /*metadata=*/true, tid);
    return p;
  };

  if (idx < kDirectPointers) {
    uint32_t p = inode->direct[idx];
    if (p == kNoPage && alloc) {
      XFTL_ASSIGN_OR_RETURN(p, alloc_data_page());
      inode->direct[idx] = p;
      XFTL_RETURN_IF_ERROR(StoreInode(ino, *inode));
    }
    return p;
  }
  idx -= kDirectPointers;
  if (idx < ppp) {
    if (inode->indirect == kNoPage) {
      if (!alloc) return kNoPage;
      XFTL_ASSIGN_OR_RETURN(inode->indirect, alloc_ptr_page());
      XFTL_RETURN_IF_ERROR(StoreInode(ino, *inode));
    }
    return through_ptr_page(inode->indirect, idx);
  }
  idx -= ppp;
  if (idx >= ppp * ppp) return Status::OutOfRange("file too large");
  if (inode->dindirect == kNoPage) {
    if (!alloc) return kNoPage;
    XFTL_ASSIGN_OR_RETURN(inode->dindirect, alloc_ptr_page());
    XFTL_RETURN_IF_ERROR(StoreInode(ino, *inode));
  }
  XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                        cache_->Get(inode->dindirect, tid));
  uint64_t l1 = idx / ppp;
  uint32_t l2_page = DecodeFixed32(e->data.data() + l1 * kPtrSize);
  if (l2_page == kNoPage) {
    if (!alloc) return kNoPage;
    XFTL_ASSIGN_OR_RETURN(l2_page, alloc_ptr_page());
    // Re-fetch: alloc_ptr_page may have evicted e.
    XFTL_ASSIGN_OR_RETURN(e, cache_->Get(inode->dindirect, tid));
    EncodeFixed32(e->data.data() + l1 * kPtrSize, l2_page);
    cache_->MarkDirty(e, /*metadata=*/true, tid);
  }
  return through_ptr_page(l2_page, idx % ppp);
}

Status ExtFs::FreeFilePages(Ino ino, Inode* inode, uint64_t from_idx) {
  const uint64_t ppp_zero = sb_.page_size / kPtrSize;
  storage::TxId zero_tid = TidFor(ino);
  // Zeroes the block pointer for file page `idx` (the page itself has
  // already been freed); otherwise fsck would see references to free pages.
  auto zero_pointer = [&](uint64_t idx) -> Status {
    if (idx < kDirectPointers) {
      inode->direct[idx] = kNoPage;
      return Status::OK();
    }
    uint64_t rel = idx - kDirectPointers;
    uint32_t ptr_page = kNoPage;
    uint64_t slot = 0;
    if (rel < ppp_zero) {
      ptr_page = inode->indirect;
      slot = rel;
    } else {
      rel -= ppp_zero;
      if (inode->dindirect == kNoPage) return Status::OK();
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                            cache_->Get(inode->dindirect, zero_tid));
      ptr_page = DecodeFixed32(e->data.data() + (rel / ppp_zero) * kPtrSize);
      slot = rel % ppp_zero;
    }
    if (ptr_page == kNoPage) return Status::OK();
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                          cache_->Get(ptr_page, zero_tid));
    EncodeFixed32(e->data.data() + slot * kPtrSize, kNoPage);
    cache_->MarkDirty(e, /*metadata=*/true, zero_tid);
    return Status::OK();
  };

  uint64_t npages = (inode->size + sb_.page_size - 1) / sb_.page_size;
  for (uint64_t idx = from_idx; idx < npages; ++idx) {
    XFTL_ASSIGN_OR_RETURN(uint32_t p,
                          FilePage(ino, inode, idx, /*alloc=*/false, nullptr));
    if (p != kNoPage) {
      XFTL_RETURN_IF_ERROR(FreePage(p));
      XFTL_RETURN_IF_ERROR(zero_pointer(idx));
    }
  }
  if (from_idx == 0) {
    // Free the pointer pages too.
    const uint64_t ppp = sb_.page_size / kPtrSize;
    storage::TxId tid = TidFor(ino);
    if (inode->indirect != kNoPage) {
      XFTL_RETURN_IF_ERROR(FreePage(inode->indirect));
      inode->indirect = kNoPage;
    }
    if (inode->dindirect != kNoPage) {
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                            cache_->Get(inode->dindirect, tid));
      for (uint64_t i = 0; i < ppp; ++i) {
        uint32_t l2 = DecodeFixed32(e->data.data() + i * kPtrSize);
        if (l2 != kNoPage) XFTL_RETURN_IF_ERROR(FreePage(l2));
      }
      XFTL_RETURN_IF_ERROR(FreePage(inode->dindirect));
      inode->dindirect = kNoPage;
    }
    std::fill(std::begin(inode->direct), std::end(inode->direct), kNoPage);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// directory
// ---------------------------------------------------------------------------

StatusOr<Ino> ExtFs::Lookup(const std::string& name) {
  XFTL_ASSIGN_OR_RETURN(Inode root, LoadInode(kRootIno));
  uint64_t slots = root.size / kDirentSize;
  for (uint64_t s = 0; s < slots; ++s) {
    uint64_t idx = s * kDirentSize / sb_.page_size;
    XFTL_ASSIGN_OR_RETURN(
        uint32_t page, FilePage(kRootIno, &root, idx, /*alloc=*/false, nullptr));
    if (page == kNoPage) continue;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
    Dirent d;
    d.DecodeFrom(e->data.data() + (s * kDirentSize) % sb_.page_size);
    if (d.in_use && d.name == name) return d.ino;
  }
  return Status::NotFound("no such file: " + name);
}

Status ExtFs::AddDirent(const std::string& name, Ino ino) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return Status::InvalidArgument("bad file name");
  }
  XFTL_ASSIGN_OR_RETURN(Inode root, LoadInode(kRootIno));
  uint64_t slots = root.size / kDirentSize;
  uint64_t target = slots;  // append by default
  for (uint64_t s = 0; s < slots; ++s) {
    uint64_t idx = s * kDirentSize / sb_.page_size;
    XFTL_ASSIGN_OR_RETURN(
        uint32_t page, FilePage(kRootIno, &root, idx, /*alloc=*/false, nullptr));
    if (page == kNoPage) continue;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
    Dirent d;
    d.DecodeFrom(e->data.data() + (s * kDirentSize) % sb_.page_size);
    if (!d.in_use) {
      target = s;
      break;
    }
  }
  uint64_t idx = target * kDirentSize / sb_.page_size;
  bool created = false;
  XFTL_ASSIGN_OR_RETURN(
      uint32_t page, FilePage(kRootIno, &root, idx, /*alloc=*/true, &created));
  BufferCache::Entry* e;
  if (created) {
    XFTL_ASSIGN_OR_RETURN(e, cache_->GetZeroed(page));
  } else {
    XFTL_ASSIGN_OR_RETURN(e, cache_->Get(page));
  }
  Dirent d;
  d.ino = ino;
  d.in_use = true;
  d.name = name;
  d.EncodeTo(e->data.data() + (target * kDirentSize) % sb_.page_size);
  cache_->MarkDirty(e, /*metadata=*/true, 0);
  if (target >= slots) {
    root.size = (target + 1) * kDirentSize;
    root.mtime = clock_->Now();
    XFTL_RETURN_IF_ERROR(StoreInode(kRootIno, root));
  }
  return Status::OK();
}

Status ExtFs::RemoveDirent(const std::string& name) {
  XFTL_ASSIGN_OR_RETURN(Inode root, LoadInode(kRootIno));
  uint64_t slots = root.size / kDirentSize;
  for (uint64_t s = 0; s < slots; ++s) {
    uint64_t idx = s * kDirentSize / sb_.page_size;
    XFTL_ASSIGN_OR_RETURN(
        uint32_t page, FilePage(kRootIno, &root, idx, /*alloc=*/false, nullptr));
    if (page == kNoPage) continue;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
    size_t off = (s * kDirentSize) % sb_.page_size;
    Dirent d;
    d.DecodeFrom(e->data.data() + off);
    if (d.in_use && d.name == name) {
      d.in_use = false;
      d.EncodeTo(e->data.data() + off);
      cache_->MarkDirty(e, /*metadata=*/true, 0);
      return Status::OK();
    }
  }
  return Status::NotFound("no such file: " + name);
}

std::vector<std::string> ExtFs::ListDir() {
  std::vector<std::string> names;
  auto root_or = LoadInode(kRootIno);
  if (!root_or.ok()) return names;
  Inode root = root_or.value();
  uint64_t slots = root.size / kDirentSize;
  for (uint64_t s = 0; s < slots; ++s) {
    uint64_t idx = s * kDirentSize / sb_.page_size;
    auto page_or = FilePage(kRootIno, &root, idx, /*alloc=*/false, nullptr);
    if (!page_or.ok() || page_or.value() == kNoPage) continue;
    auto e_or = cache_->Get(page_or.value());
    if (!e_or.ok()) continue;
    Dirent d;
    d.DecodeFrom(e_or.value()->data.data() + (s * kDirentSize) % sb_.page_size);
    if (d.in_use) names.push_back(d.name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// public file API
// ---------------------------------------------------------------------------

StatusOr<Fd> ExtFs::Create(const std::string& name) {
  ChargeSyscall();
  auto existing = Lookup(name);
  if (existing.ok()) return Status::AlreadyExists(name);
  XFTL_ASSIGN_OR_RETURN(Ino ino, AllocInode(InodeMode::kFile));
  XFTL_RETURN_IF_ERROR(AddDirent(name, ino));
  stats_.file_creates++;
  open_files_.push_back({ino, true});
  return Fd(open_files_.size() - 1);
}

StatusOr<Fd> ExtFs::Open(const std::string& name) {
  ChargeSyscall();
  XFTL_ASSIGN_OR_RETURN(Ino ino, Lookup(name));
  open_files_.push_back({ino, true});
  return Fd(open_files_.size() - 1);
}

Status ExtFs::Close(Fd fd) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  open_files_[fd].valid = false;
  return Status::OK();
}

StatusOr<bool> ExtFs::Exists(const std::string& name) {
  ChargeSyscall();
  auto r = Lookup(name);
  if (r.ok()) return true;
  if (r.status().IsNotFound()) return false;
  return r.status();
}

Status ExtFs::Unlink(const std::string& name) {
  ChargeSyscall();
  XFTL_ASSIGN_OR_RETURN(Ino ino, Lookup(name));
  for (const OpenFile& of : open_files_) {
    if (of.valid && of.ino == ino) {
      return Status::Busy("file is open: " + name);
    }
  }
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
  XFTL_RETURN_IF_ERROR(FreeFilePages(ino, &inode, 0));
  inode = Inode{};  // mode kFree
  XFTL_RETURN_IF_ERROR(StoreInode(ino, inode));
  XFTL_RETURN_IF_ERROR(RemoveDirent(name));
  active_tid_.erase(ino);
  stats_.file_deletes++;
  return Status::OK();
}

StatusOr<size_t> ExtFs::Read(Fd fd, uint64_t offset, size_t n, uint8_t* out) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  Ino ino = open_files_[fd].ino;
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
  if (offset >= inode.size) return size_t(0);
  n = size_t(std::min<uint64_t>(n, inode.size - offset));
  storage::TxId tid = 0;
  if (auto it = active_tid_.find(ino); it != active_tid_.end()) {
    tid = it->second;
  }

  size_t done = 0;
  while (done < n) {
    uint64_t pos = offset + done;
    uint64_t idx = pos / sb_.page_size;
    size_t in_page = size_t(pos % sb_.page_size);
    size_t chunk = std::min(n - done, size_t(sb_.page_size) - in_page);
    XFTL_ASSIGN_OR_RETURN(uint32_t page,
                          FilePage(ino, &inode, idx, /*alloc=*/false, nullptr));
    if (page == kNoPage) {
      std::memset(out + done, 0, chunk);  // hole
    } else {
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page, tid));
      std::memcpy(out + done, e->data.data() + in_page, chunk);
    }
    done += chunk;
    stats_.page_reads++;
  }
  return done;
}

StatusOr<uint64_t> ExtFs::SnapPin() {
  ChargeSyscall();
  return dev_->SnapPin();
}

Status ExtFs::SnapUnpin(uint64_t epoch) {
  ChargeSyscall();
  return dev_->SnapUnpin(epoch);
}

Status ExtFs::SnapReadPage(Fd fd, uint64_t idx, uint64_t epoch, uint8_t* out) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  Ino ino = open_files_[fd].ino;
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
  XFTL_ASSIGN_OR_RETURN(uint32_t page,
                        FilePage(ino, &inode, idx, /*alloc=*/false, nullptr));
  stats_.page_reads++;
  if (page == kNoPage) {
    // Hole in the live file: it was certainly a hole at the pin too.
    std::memset(out, 0, sb_.page_size);
    return Status::OK();
  }
  return dev_->SnapRead(epoch, page, out);
}

Status ExtFs::Write(Fd fd, uint64_t offset, const uint8_t* data, size_t n) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  Ino ino = open_files_[fd].ino;
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
  storage::TxId tid = TidFor(ino);

  // Extending past EOF: the gap must read as zeros. Hole pages already do,
  // but the old last page may carry stale bytes beyond EOF (e.g., from a
  // page recycled by a previous file whose zeroing never committed), so
  // scrub its tail explicitly.
  if (offset > inode.size && inode.size % sb_.page_size != 0) {
    uint64_t tail = inode.size % sb_.page_size;
    XFTL_ASSIGN_OR_RETURN(
        uint32_t last, FilePage(ino, &inode, inode.size / sb_.page_size,
                                /*alloc=*/false, nullptr));
    if (last != kNoPage) {
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(last, tid));
      std::memset(e->data.data() + tail, 0, sb_.page_size - tail);
      bool pin_tail = options_.journal_mode == JournalMode::kFull;
      cache_->MarkDirty(e, /*metadata=*/false, tid, ino);
      if (pin_tail) e->pinned = true;
    }
  }

  size_t done = 0;
  while (done < n) {
    uint64_t pos = offset + done;
    uint64_t idx = pos / sb_.page_size;
    size_t in_page = size_t(pos % sb_.page_size);
    size_t chunk = std::min(n - done, size_t(sb_.page_size) - in_page);
    bool created = false;
    XFTL_ASSIGN_OR_RETURN(uint32_t page,
                          FilePage(ino, &inode, idx, /*alloc=*/true, &created));
    BufferCache::Entry* e;
    if (created) {
      XFTL_ASSIGN_OR_RETURN(e, cache_->GetZeroed(page));
    } else {
      XFTL_ASSIGN_OR_RETURN(e, cache_->Get(page, tid));
    }
    std::memcpy(e->data.data() + in_page, data + done, chunk);
    bool pin_data = options_.journal_mode == JournalMode::kFull;
    cache_->MarkDirty(e, /*metadata=*/false, tid, ino);
    if (pin_data) e->pinned = true;  // data=journal pins data pages too
    done += chunk;
  }
  // FilePage may have re-stored the inode (new block pointers); reload so the
  // size update does not clobber them.
  XFTL_ASSIGN_OR_RETURN(inode, LoadInode(ino));
  inode.size = std::max(inode.size, offset + n);
  inode.mtime = clock_->Now();
  XFTL_RETURN_IF_ERROR(StoreInode(ino, inode));
  return Status::OK();
}

Status ExtFs::Truncate(Fd fd, uint64_t new_size) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  Ino ino = open_files_[fd].ino;
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
  if (new_size < inode.size) {
    uint64_t keep = (new_size + sb_.page_size - 1) / sb_.page_size;
    XFTL_RETURN_IF_ERROR(FreeFilePages(ino, &inode, keep));
    // Zero the tail of the partial last page, or a later extension would
    // expose the truncated bytes (POSIX requires the gap to read as zeros).
    uint64_t tail = new_size % sb_.page_size;
    if (tail != 0) {
      XFTL_ASSIGN_OR_RETURN(
          uint32_t page,
          FilePage(ino, &inode, new_size / sb_.page_size, /*alloc=*/false,
                   nullptr));
      if (page != kNoPage) {
        XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                              cache_->Get(page, TidFor(ino)));
        std::memset(e->data.data() + tail, 0, sb_.page_size - tail);
        cache_->MarkDirty(e, /*metadata=*/false, TidFor(ino), ino);
      }
    }
  }
  inode.size = new_size;
  inode.mtime = clock_->Now();
  return StoreInode(ino, inode);
}

StatusOr<uint64_t> ExtFs::FileSize(Fd fd) {
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(open_files_[fd].ino));
  return inode.size;
}

// ---------------------------------------------------------------------------
// durability: fsync / ioctl(abort) / sync
// ---------------------------------------------------------------------------

Status ExtFs::LinkTransactions(const std::vector<Fd>& fds) {
  ChargeSyscall();
  if (options_.journal_mode != JournalMode::kOff) {
    return Status::NotSupported("linked transactions require journaling off");
  }
  auto members = std::make_shared<std::vector<Ino>>();
  for (Fd fd : fds) {
    if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
      return Status::InvalidArgument("bad fd");
    }
    Ino ino = open_files_[fd].ino;
    if (active_tid_.count(ino) != 0 || tx_groups_.count(ino) != 0) {
      return Status::Busy("file already has an open transaction");
    }
    members->push_back(ino);
  }
  // One transaction id for the whole group.
  storage::TxId tid = next_tid_++;
  for (Ino ino : *members) {
    active_tid_[ino] = tid;
    tx_groups_[ino] = members;
  }
  return Status::OK();
}

storage::TxId ExtFs::TidFor(Ino ino) {
  if (options_.journal_mode != JournalMode::kOff) return 0;
  auto it = active_tid_.find(ino);
  if (it != active_tid_.end()) return it->second;
  storage::TxId tid = next_tid_++;
  active_tid_[ino] = tid;
  return tid;
}

Status ExtFs::SyncFile(Fd fd, bool datasync, bool ordered) {
  SimNanos t0 = clock_->Now();
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  stats_.fsync_calls++;
  Ino ino = open_files_[fd].ino;
  Status s = CommitDirty(ino, datasync, ordered);
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kFs, trace::Op::kFsync, t0,
                    static_cast<uint32_t>(ino),
                    (datasync ? 1 : 0) | (ordered ? 2 : 0), 0,
                    clock_->Now() - t0, s.code());
  }
  return s;
}

Status ExtFs::Fsync(Fd fd) { return SyncFile(fd, false, false); }

Status ExtFs::Fdatasync(Fd fd) { return SyncFile(fd, true, false); }

Status ExtFs::Fbarrier(Fd fd) { return SyncFile(fd, false, true); }

Status ExtFs::Fdatabarrier(Fd fd) { return SyncFile(fd, true, true); }

Status ExtFs::CommitDirty(Ino ino, bool datasync, bool ordered) {
  // Collect the dirty set. Ordered/full journaling flushes all dirty data
  // (JBD's shared running transaction); off mode commits this file's data -
  // plus every linked file's - and all dirty metadata, under the shared
  // transaction id.
  std::set<Ino> members{ino};
  if (auto git = tx_groups_.find(ino); git != tx_groups_.end()) {
    members.insert(git->second->begin(), git->second->end());
  }
  std::vector<BufferCache::Entry*> data_entries;
  std::vector<BufferCache::Entry*> meta_entries;
  cache_->ForEachDirty([&](BufferCache::Entry* e) {
    if (e->metadata) {
      // fdatasync defers pages whose only change is an inode timestamp;
      // they stay dirty for the next full fsync or substantive commit.
      if (!(datasync && e->ts_only)) meta_entries.push_back(e);
    } else if (options_.journal_mode != JournalMode::kOff ||
               members.count(e->owner) != 0) {
      data_entries.push_back(e);
    }
  });

  switch (options_.journal_mode) {
    case JournalMode::kOff: {
      if (data_entries.empty() && meta_entries.empty()) {
        auto it = active_tid_.find(ino);
        if (it != active_tid_.end()) {
          XFTL_RETURN_IF_ERROR(dev_->TxCommit(it->second));
          for (Ino m : members) {
            active_tid_.erase(m);
            tx_groups_.erase(m);
          }
        }
        return RunPendingTrims();
      }
      storage::TxId tid = TidFor(ino);
      // Group writeback: the whole dirty set goes down as one queued batch
      // so the device stripes the programs across banks before the commit
      // barrier waits for them.
      std::vector<uint64_t> batch_pages;
      std::vector<const uint8_t*> batch_datas;
      batch_pages.reserve(data_entries.size() + meta_entries.size());
      batch_datas.reserve(data_entries.size() + meta_entries.size());
      for (auto* e : data_entries) {
        batch_pages.push_back(e->page);
        batch_datas.push_back(e->data.data());
      }
      for (auto* e : meta_entries) {
        batch_pages.push_back(e->page);
        batch_datas.push_back(e->data.data());
      }
      XFTL_RETURN_IF_ERROR(dev_->TxWriteBatch(
          tid, batch_pages.data(), batch_datas.data(), batch_pages.size()));
      stats_.data_page_writes += data_entries.size();
      stats_.metadata_page_writes += meta_entries.size();
      XFTL_RETURN_IF_ERROR(dev_->TxCommit(tid));
      // Entries flip clean only once the whole transaction committed. If a
      // TxWrite fails part-way (the device degrading to read-only, say), the
      // written slots are still uncommitted device-side and IoctlAbort must
      // find these entries dirty so it discards them — otherwise the cache
      // would keep serving the aborted contents.
      for (auto* e : data_entries) {
        e->dirty = false;
        e->pinned = false;
        e->tid = 0;
      }
      for (auto* e : meta_entries) {
        e->dirty = false;
        e->pinned = false;
        e->tid = 0;
      }
      for (Ino m : members) {
        active_tid_.erase(m);
        tx_groups_.erase(m);
      }
      return RunPendingTrims();
    }
    case JournalMode::kOrdered: {
      // Data first, in place — one queued batch; the journal's Barrier 1
      // waits for the striped programs.
      if (!data_entries.empty()) {
        std::vector<uint64_t> dp;
        std::vector<const uint8_t*> dd;
        dp.reserve(data_entries.size());
        dd.reserve(data_entries.size());
        for (auto* e : data_entries) {
          dp.push_back(e->page);
          dd.push_back(e->data.data());
        }
        XFTL_RETURN_IF_ERROR(dev_->WriteBatch(dp.data(), dd.data(), dp.size()));
        stats_.data_page_writes += data_entries.size();
        for (auto* e : data_entries) {
          e->dirty = false;
          e->pinned = false;
        }
      }
      if (meta_entries.empty()) {
        XFTL_RETURN_IF_ERROR(ordered ? dev_->Barrier() : dev_->FlushBarrier());
        return RunPendingTrims();
      }
      std::vector<std::pair<uint64_t, const uint8_t*>> txn;
      txn.reserve(meta_entries.size());
      for (auto* e : meta_entries) txn.emplace_back(e->page, e->data.data());
      XFTL_RETURN_IF_ERROR(journal_->CommitTransaction(txn, ordered));
      // Checkpoint: metadata to home locations (made durable by the next
      // transaction's first barrier).
      {
        std::vector<uint64_t> mp;
        std::vector<const uint8_t*> md;
        mp.reserve(meta_entries.size());
        md.reserve(meta_entries.size());
        for (auto* e : meta_entries) {
          mp.push_back(e->page);
          md.push_back(e->data.data());
        }
        XFTL_RETURN_IF_ERROR(dev_->WriteBatch(mp.data(), md.data(), mp.size()));
        stats_.checkpoint_page_writes += meta_entries.size();
        for (auto* e : meta_entries) {
          e->dirty = false;
          e->pinned = false;
        }
      }
      return RunPendingTrims();
    }
    case JournalMode::kFull: {
      if (data_entries.empty() && meta_entries.empty()) {
        XFTL_RETURN_IF_ERROR(ordered ? dev_->Barrier() : dev_->FlushBarrier());
        return RunPendingTrims();
      }
      // Both data and metadata go through the journal: every page is
      // written twice.
      std::vector<std::pair<uint64_t, const uint8_t*>> txn;
      txn.reserve(data_entries.size() + meta_entries.size());
      for (auto* e : data_entries) txn.emplace_back(e->page, e->data.data());
      for (auto* e : meta_entries) txn.emplace_back(e->page, e->data.data());
      XFTL_RETURN_IF_ERROR(journal_->CommitTransaction(txn, ordered));
      // Checkpoint everything in place as one queued batch.
      {
        std::vector<uint64_t> cp;
        std::vector<const uint8_t*> cd;
        cp.reserve(txn.size());
        cd.reserve(txn.size());
        for (auto* e : data_entries) {
          cp.push_back(e->page);
          cd.push_back(e->data.data());
        }
        for (auto* e : meta_entries) {
          cp.push_back(e->page);
          cd.push_back(e->data.data());
        }
        XFTL_RETURN_IF_ERROR(dev_->WriteBatch(cp.data(), cd.data(), cp.size()));
        stats_.data_page_writes += data_entries.size();
        stats_.checkpoint_page_writes += meta_entries.size();
        for (auto* e : data_entries) {
          e->dirty = false;
          e->pinned = false;
        }
        for (auto* e : meta_entries) {
          e->dirty = false;
          e->pinned = false;
        }
      }
      return RunPendingTrims();
    }
  }
  return Status::OK();
}

Status ExtFs::RunPendingTrims() {
  const uint64_t bits_per_page = uint64_t(sb_.page_size) * 8;
  for (uint32_t page : pending_trims_) {
    // The page may have been reallocated to another file since it was
    // freed; trimming it now would destroy live data. Re-check the bitmap.
    uint64_t bpage = sb_.bitmap_start + page / bits_per_page;
    uint64_t bit = page % bits_per_page;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(bpage));
    if ((e->data[bit / 8] & (1u << (bit % 8))) != 0) continue;
    XFTL_RETURN_IF_ERROR(dev_->Trim(page));
    stats_.trims++;
  }
  pending_trims_.clear();
  return Status::OK();
}

Status ExtFs::IoctlAbort(Fd fd) {
  SimNanos t0 = clock_->Now();
  ChargeSyscall();
  if (fd < 0 || size_t(fd) >= open_files_.size() || !open_files_[fd].valid) {
    return Status::InvalidArgument("bad fd");
  }
  if (options_.journal_mode != JournalMode::kOff) {
    return Status::NotSupported("abort ioctl requires journaling off");
  }
  Ino ino = open_files_[fd].ino;
  auto it = active_tid_.find(ino);
  storage::TxId tid = it == active_tid_.end() ? 0 : it->second;
  std::set<Ino> members{ino};
  if (auto git = tx_groups_.find(ino); git != tx_groups_.end()) {
    members.insert(git->second->begin(), git->second->end());
  }

  // Drop every dirty page the transaction touched: the linked files' cached
  // data pages and all uncommitted metadata (they reload from their
  // committed versions).
  std::vector<uint64_t> to_discard;
  cache_->ForEachDirty([&](BufferCache::Entry* e) {
    if (e->metadata || members.count(e->owner) != 0) {
      to_discard.push_back(e->page);
    }
  });
  for (uint64_t page : to_discard) cache_->Discard(page);
  pending_trims_.clear();

  if (tid != 0) {
    XFTL_RETURN_IF_ERROR(dev_->TxAbort(tid));
  }
  for (Ino m : members) {
    active_tid_.erase(m);
    tx_groups_.erase(m);
  }
  stats_.tx_aborts++;
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kFs, trace::Op::kTxAbort, t0,
                    static_cast<uint32_t>(ino), to_discard.size(), 0,
                    clock_->Now() - t0, StatusCode::kOk);
  }
  return Status::OK();
}

StatusOr<FsckReport> ExtFs::Fsck() {
  FsckReport report;
  std::set<uint32_t> claimed;  // data-region pages owned by some file

  auto bit_set = [&](uint32_t page) -> StatusOr<bool> {
    const uint64_t bits_per_page = uint64_t(sb_.page_size) * 8;
    uint64_t bpage = sb_.bitmap_start + page / bits_per_page;
    uint64_t bit = page % bits_per_page;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(bpage));
    return (e->data[bit / 8] & (1u << (bit % 8))) != 0;
  };

  // Claims one page for `ino`, validating range, bitmap and uniqueness.
  auto claim = [&](Ino ino, uint32_t page) -> Status {
    if (page < sb_.data_start || page >= sb_.num_pages) {
      return Status::Corruption("inode " + std::to_string(ino) +
                                " references page " + std::to_string(page) +
                                " outside the data region");
    }
    if (!claimed.insert(page).second) {
      return Status::Corruption("page " + std::to_string(page) +
                                " referenced by two files");
    }
    XFTL_ASSIGN_OR_RETURN(bool set, bit_set(page));
    if (!set) {
      return Status::Corruption("page " + std::to_string(page) +
                                " in use but free in the bitmap");
    }
    report.pages_in_use++;
    return Status::OK();
  };

  // Walks one inode's page tree (data + pointer pages).
  auto walk_inode = [&](Ino ino) -> Status {
    XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
    if (inode.mode == InodeMode::kFree) {
      return Status::Corruption("dirent references free inode " +
                                std::to_string(ino));
    }
    const uint64_t ppp = sb_.page_size / kPtrSize;
    for (uint32_t i = 0; i < kDirectPointers; ++i) {
      if (inode.direct[i] != kNoPage) {
        XFTL_RETURN_IF_ERROR(claim(ino, inode.direct[i]));
      }
    }
    auto walk_ptr_page = [&](uint32_t ptr_page) -> Status {
      XFTL_RETURN_IF_ERROR(claim(ino, ptr_page));
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(ptr_page));
      std::vector<uint32_t> ptrs(ppp);
      for (uint64_t i = 0; i < ppp; ++i) {
        ptrs[i] = DecodeFixed32(e->data.data() + i * kPtrSize);
      }
      for (uint32_t p : ptrs) {
        if (p != kNoPage) XFTL_RETURN_IF_ERROR(claim(ino, p));
      }
      return Status::OK();
    };
    if (inode.indirect != kNoPage) {
      XFTL_RETURN_IF_ERROR(walk_ptr_page(inode.indirect));
    }
    if (inode.dindirect != kNoPage) {
      XFTL_RETURN_IF_ERROR(claim(ino, inode.dindirect));
      XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e,
                            cache_->Get(inode.dindirect));
      std::vector<uint32_t> l2s(ppp);
      for (uint64_t i = 0; i < ppp; ++i) {
        l2s[i] = DecodeFixed32(e->data.data() + i * kPtrSize);
      }
      for (uint32_t l2 : l2s) {
        if (l2 != kNoPage) XFTL_RETURN_IF_ERROR(walk_ptr_page(l2));
      }
    }
    return Status::OK();
  };

  // Root directory plus every named file.
  std::set<Ino> reachable{kRootIno};
  XFTL_RETURN_IF_ERROR(walk_inode(kRootIno));
  XFTL_ASSIGN_OR_RETURN(Inode root, LoadInode(kRootIno));
  uint64_t slots = root.size / kDirentSize;
  for (uint64_t s = 0; s < slots; ++s) {
    uint64_t idx = s * kDirentSize / sb_.page_size;
    XFTL_ASSIGN_OR_RETURN(
        uint32_t page, FilePage(kRootIno, &root, idx, /*alloc=*/false, nullptr));
    if (page == kNoPage) continue;
    XFTL_ASSIGN_OR_RETURN(BufferCache::Entry * e, cache_->Get(page));
    Dirent d;
    d.DecodeFrom(e->data.data() + (s * kDirentSize) % sb_.page_size);
    if (!d.in_use) continue;
    if (d.ino >= sb_.inode_count) {
      return Status::Corruption("dirent '" + d.name + "' has bad inode");
    }
    if (!reachable.insert(d.ino).second) {
      return Status::Corruption("inode " + std::to_string(d.ino) +
                                " has two directory entries");
    }
    XFTL_RETURN_IF_ERROR(walk_inode(d.ino));
    report.files++;
  }

  // Orphan inodes: allocated but unreachable.
  for (Ino ino = 0; ino < sb_.inode_count; ++ino) {
    XFTL_ASSIGN_OR_RETURN(Inode inode, LoadInode(ino));
    if (inode.mode != InodeMode::kFree && reachable.count(ino) == 0) {
      return Status::Corruption("orphan inode " + std::to_string(ino));
    }
  }

  // Leaked pages: allocated in the bitmap but not claimed by any file.
  for (uint64_t page = sb_.data_start; page < sb_.num_pages; ++page) {
    XFTL_ASSIGN_OR_RETURN(bool set, bit_set(uint32_t(page)));
    if (set && claimed.count(uint32_t(page)) == 0) report.leaked_pages++;
  }
  return report;
}

Status ExtFs::SyncAll() {
  if (options_.journal_mode == JournalMode::kOff) {
    // Commit every file with an open transaction, then any remaining dirty
    // metadata under a fresh transaction.
    std::vector<Ino> inos;
    for (const auto& [ino, tid] : active_tid_) inos.push_back(ino);
    for (Ino ino : inos) XFTL_RETURN_IF_ERROR(CommitDirty(ino, false, false));
    bool any_dirty = false;
    cache_->ForEachDirty([&](BufferCache::Entry*) { any_dirty = true; });
    if (any_dirty) XFTL_RETURN_IF_ERROR(CommitDirty(kRootIno, false, false));
    return Status::OK();
  }
  XFTL_RETURN_IF_ERROR(CommitDirty(kRootIno, false, false));
  return dev_->FlushBarrier();
}

}  // namespace xftl::fs
