// On-disk format of the mini-ext4 file system: superblock, inode table,
// page-allocation bitmap, journal region, data region. All multi-byte fields
// little-endian; all structures page-aligned.
//
//   page 0                superblock
//   [1, 1+inode_pages)    inode table (128-byte inodes)
//   [.., +bitmap_pages)   allocation bitmap (1 bit per device page)
//   [.., +journal_pages)  journal (holds one transaction at a time)
//   [.., num_pages)       data
#ifndef XFTL_FS_FS_FORMAT_H_
#define XFTL_FS_FS_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/coding.h"

namespace xftl::fs {

using Ino = uint32_t;
inline constexpr Ino kRootIno = 0;
inline constexpr uint32_t kNoPage = 0;  // page 0 is the superblock

inline constexpr uint32_t kSuperMagic = 0x58463445;    // "XF4E"
inline constexpr uint32_t kInodeSize = 128;
inline constexpr uint32_t kDirentSize = 64;
inline constexpr uint32_t kMaxNameLen = kDirentSize - 6;
inline constexpr uint32_t kDirectPointers = 12;

enum class InodeMode : uint32_t { kFree = 0, kFile = 1, kDir = 2 };

struct Superblock {
  uint32_t magic = kSuperMagic;
  uint32_t page_size = 0;
  uint64_t num_pages = 0;
  uint32_t inode_count = 0;
  uint32_t inode_start = 0;   // first inode-table page
  uint32_t inode_pages = 0;
  uint32_t bitmap_start = 0;
  uint32_t bitmap_pages = 0;
  uint32_t journal_start = 0;
  uint32_t journal_pages = 0;
  uint32_t data_start = 0;

  void EncodeTo(uint8_t* page) const {
    EncodeFixed32(page + 0, magic);
    EncodeFixed32(page + 4, page_size);
    EncodeFixed64(page + 8, num_pages);
    EncodeFixed32(page + 16, inode_count);
    EncodeFixed32(page + 20, inode_start);
    EncodeFixed32(page + 24, inode_pages);
    EncodeFixed32(page + 28, bitmap_start);
    EncodeFixed32(page + 32, bitmap_pages);
    EncodeFixed32(page + 36, journal_start);
    EncodeFixed32(page + 40, journal_pages);
    EncodeFixed32(page + 44, data_start);
  }
  void DecodeFrom(const uint8_t* page) {
    magic = DecodeFixed32(page + 0);
    page_size = DecodeFixed32(page + 4);
    num_pages = DecodeFixed64(page + 8);
    inode_count = DecodeFixed32(page + 16);
    inode_start = DecodeFixed32(page + 20);
    inode_pages = DecodeFixed32(page + 24);
    bitmap_start = DecodeFixed32(page + 28);
    bitmap_pages = DecodeFixed32(page + 32);
    journal_start = DecodeFixed32(page + 36);
    journal_pages = DecodeFixed32(page + 40);
    data_start = DecodeFixed32(page + 44);
  }
};

// 128-byte on-disk inode: mode, link count, size in bytes, 12 direct page
// pointers, one single-indirect and one double-indirect pointer page.
struct Inode {
  InodeMode mode = InodeMode::kFree;
  uint32_t nlink = 0;
  uint64_t size = 0;
  uint32_t direct[kDirectPointers] = {0};
  uint32_t indirect = 0;
  uint32_t dindirect = 0;
  // Modification time (simulated nanos). Every write dirties the inode via
  // mtime, which is what makes ordered-mode fsync always journal metadata -
  // the behaviour the paper measures on ext4.
  uint64_t mtime = 0;

  void EncodeTo(uint8_t* dst) const {
    std::memset(dst, 0, kInodeSize);
    EncodeFixed32(dst + 0, uint32_t(mode));
    EncodeFixed32(dst + 4, nlink);
    EncodeFixed64(dst + 8, size);
    for (uint32_t i = 0; i < kDirectPointers; ++i) {
      EncodeFixed32(dst + 16 + i * 4, direct[i]);
    }
    EncodeFixed32(dst + 64, indirect);
    EncodeFixed32(dst + 68, dindirect);
    EncodeFixed64(dst + 72, mtime);
  }
  void DecodeFrom(const uint8_t* src) {
    mode = InodeMode(DecodeFixed32(src + 0));
    nlink = DecodeFixed32(src + 4);
    size = DecodeFixed64(src + 8);
    for (uint32_t i = 0; i < kDirectPointers; ++i) {
      direct[i] = DecodeFixed32(src + 16 + i * 4);
    }
    indirect = DecodeFixed32(src + 64);
    dindirect = DecodeFixed32(src + 68);
    mtime = DecodeFixed64(src + 72);
  }
};

// 64-byte directory entry slot.
struct Dirent {
  Ino ino = 0;
  bool in_use = false;
  std::string name;

  void EncodeTo(uint8_t* dst) const {
    std::memset(dst, 0, kDirentSize);
    EncodeFixed32(dst + 0, ino);
    dst[4] = in_use ? 1 : 0;
    dst[5] = uint8_t(name.size());
    std::memcpy(dst + 6, name.data(), name.size());
  }
  void DecodeFrom(const uint8_t* src) {
    ino = DecodeFixed32(src + 0);
    in_use = src[4] != 0;
    uint8_t len = src[5];
    name.assign(reinterpret_cast<const char*>(src + 6), len);
  }
};

// Journal page headers.
inline constexpr uint32_t kJournalDescMagic = 0x4a44534b;    // "JDSK"
inline constexpr uint32_t kJournalCommitMagic = 0x4a434d54;  // "JCMT"

}  // namespace xftl::fs

#endif  // XFTL_FS_FS_FORMAT_H_
