// ExtFs: a compact ext4-like file system over a (transactional) block
// device. It exists to reproduce the host-side I/O behaviour the paper
// measures:
//
//  * ordered journaling: data written in place first, metadata through a
//    JBD-style journal, two write barriers per fsync;
//  * full (data) journaling: data and metadata both journaled (each data
//    page written twice);
//  * off mode on X-FTL: journaling disabled entirely; the file system relays
//    transaction ids to the device, translates fsync into
//    TxWrite*..TxCommit, and implements the paper's new ioctl(abort).
//
// The buffer cache follows JBD pinning rules, and dirty-page eviction in off
// mode is the "steal" path: uncommitted pages reach the device early, tagged
// with their transaction id, and X-FTL keeps them rollbackable.
//
// Deliberate simplifications (documented in DESIGN.md): a single root
// directory, no permissions/timestamps beyond mtime, one transaction per
// file at a time.
#ifndef XFTL_FS_EXT_FS_H_
#define XFTL_FS_EXT_FS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "fs/buffer_cache.h"
#include "fs/fs_format.h"
#include "fs/journal.h"
#include "storage/block_device.h"
#include "trace/tracer.h"

namespace xftl::fs {

enum class JournalMode {
  kOrdered,  // metadata journaling (ext4 default)
  kFull,     // data + metadata journaling
  kOff,      // no journal; transactional device provides atomicity
};

const char* JournalModeName(JournalMode mode);

struct FsOptions {
  JournalMode journal_mode = JournalMode::kOrdered;
  uint32_t cache_pages = 1024;
  uint32_t inode_count = 512;
  uint32_t journal_pages = 64;
  // Host CPU cost charged per system call.
  SimNanos syscall_overhead = Micros(3);
};

// Result of a consistency check (Fsck).
struct FsckReport {
  uint64_t files = 0;
  uint64_t pages_in_use = 0;   // data + pointer pages of all files
  uint64_t leaked_pages = 0;   // allocated in the bitmap but unreferenced
};

struct FsStats {
  uint64_t fsync_calls = 0;
  uint64_t data_page_writes = 0;       // in-place or TxWrite data pages
  uint64_t metadata_page_writes = 0;   // off-mode metadata TxWrites
  uint64_t checkpoint_page_writes = 0; // journal -> home location writes
  uint64_t page_reads = 0;
  uint64_t file_creates = 0;
  uint64_t file_deletes = 0;
  uint64_t tx_aborts = 0;
  uint64_t trims = 0;
  // Total metadata traffic as the paper's Table 1 "File System" column
  // counts it (journal writes included via Journal::stats()).
  uint64_t TotalMetadataWrites(const JournalStats& js) const {
    return metadata_page_writes + checkpoint_page_writes +
           js.journal_page_writes;
  }
};

using Fd = int;

class ExtFs {
 public:
  // Formats the device. Destroys existing contents.
  static Status Mkfs(storage::TxBlockDevice* dev, const FsOptions& options);

  // Mounts, running journal recovery if needed. In kOff mode the device must
  // support transactions (the caller runs device recovery via PowerCycle).
  static StatusOr<std::unique_ptr<ExtFs>> Mount(storage::TxBlockDevice* dev,
                                                const FsOptions& options,
                                                SimClock* clock);

  ~ExtFs() = default;
  ExtFs(const ExtFs&) = delete;
  ExtFs& operator=(const ExtFs&) = delete;

  // Flushes all dirty state; the object may be destroyed afterwards.
  Status Unmount();

  StatusOr<Fd> Create(const std::string& name);
  StatusOr<Fd> Open(const std::string& name);
  Status Close(Fd fd);
  StatusOr<bool> Exists(const std::string& name);
  Status Unlink(const std::string& name);
  std::vector<std::string> ListDir();

  StatusOr<size_t> Read(Fd fd, uint64_t offset, size_t n, uint8_t* out);
  Status Write(Fd fd, uint64_t offset, const uint8_t* data, size_t n);
  Status Truncate(Fd fd, uint64_t new_size);
  StatusOr<uint64_t> FileSize(Fd fd);

  // fsync(2): makes the file's data and metadata durable. In kOff mode this
  // is the commit point of the file's open transaction (paper §5.2).
  Status Fsync(Fd fd);

  // fdatasync(2): like fsync, but metadata pages whose only change is an
  // inode timestamp may be deferred (they stay dirty for a later full
  // commit). SQLite issues fdatasync on Linux, and for a database file in
  // steady state — page rewrites, no growth — this keeps each commit's
  // write set on the pages the transaction actually touched.
  Status Fdatasync(Fd fd);

  // fbarrier / fdatabarrier: the order-preserving siblings of fsync and
  // fdatasync. The file's dirty state is committed through the same path,
  // but every durability point goes down as an ordered device barrier
  // instead of a flush: later writes cannot overtake the commit, yet the
  // commit may still be in flight when the call returns (epoch-prefix
  // durability — a power cut can lose the acked tail, never reorder it).
  // On devices without ordered-command support these degenerate to
  // Fsync/Fdatasync.
  Status Fbarrier(Fd fd);
  Status Fdatabarrier(Fd fd);

  // The paper's new ioctl request: aborts the file's open transaction,
  // dropping cached dirty pages and rolling back stolen ones in the device.
  Status IoctlAbort(Fd fd);

  // Multi-file transactions (paper §4.3): groups the files so their updates
  // share one device transaction id - fsync on any member commits all of
  // them atomically, ioctl-abort rolls all of them back. This is the case
  // where stock SQLite needs a master journal and X-FTL does not. Only
  // available with journaling off; the files must not have open
  // transactions yet. The group dissolves at commit or abort.
  Status LinkTransactions(const std::vector<Fd>& fds);

  // --- MVCC snapshot reads (paper extension) -------------------------------
  // Thin passthrough to the device's snapshot verbs. A pinned epoch lets a
  // reader see every data page as of that commit epoch while a writer keeps
  // committing; pins are volatile in the device and die at power cuts.
  bool SupportsSnapshots() const { return dev_->SupportsSnapshots(); }
  StatusOr<uint64_t> SnapPin();
  Status SnapUnpin(uint64_t epoch);
  // Reads file page `idx` of `fd` as of pinned `epoch`, bypassing the
  // buffer cache (cached copies can be newer than the snapshot). The file's
  // block mapping is resolved live: page rewrites keep their device page in
  // this file system, so a data page that existed at the pin resolves to the
  // same device page and the device serves the retained pre-image. A page
  // allocated after the pin reads as unwritten (0xff fill from the device).
  Status SnapReadPage(Fd fd, uint64_t idx, uint64_t epoch, uint8_t* out);

  // Flushes every file and the journal (sync(2)-ish).
  Status SyncAll();

  // Consistency check: directory entries reference live inodes, every file
  // page is inside the data region, allocated in the bitmap, and owned by
  // exactly one file; non-free inodes are reachable. Returns Corruption on
  // the first violation. Leaked pages (allocated but unreferenced) are
  // reported, not failed - they can legitimately exist after a crash.
  StatusOr<FsckReport> Fsck();

  // Page size of the underlying device (file I/O is byte-granular but
  // storage I/O happens in these units).
  uint32_t page_size() const { return sb_.page_size; }
  SimClock* clock() const { return clock_; }

  const FsStats& stats() const { return stats_; }
  const JournalStats& journal_stats() const {
    static const JournalStats kEmpty{};
    return journal_ ? journal_->stats() : kEmpty;
  }
  void ResetStats();
  JournalMode journal_mode() const { return options_.journal_mode; }
  uint64_t cache_steals() const { return cache_->steals(); }

  // Optional event tracing of durability points (fsync, ioctl-abort);
  // null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  ExtFs(storage::TxBlockDevice* dev, const FsOptions& options,
        SimClock* clock);

  struct OpenFile {
    Ino ino = 0;
    bool valid = false;
  };

  void ChargeSyscall() { clock_->Advance(options_.syscall_overhead); }

  // --- inode and bitmap helpers -------------------------------------------
  StatusOr<Inode> LoadInode(Ino ino);
  Status StoreInode(Ino ino, const Inode& inode);
  StatusOr<Ino> AllocInode(InodeMode mode);
  StatusOr<uint32_t> AllocPage();
  Status FreePage(uint32_t page);

  // --- file page mapping ---------------------------------------------------
  // Resolves file-relative page `idx` to a device page; allocates the page
  // (and any indirect pages) when `alloc` is set. Returns kNoPage when
  // unmapped and !alloc.
  StatusOr<uint32_t> FilePage(Ino ino, Inode* inode, uint64_t idx, bool alloc,
                              bool* created);
  Status FreeFilePages(Ino ino, Inode* inode, uint64_t from_idx);

  // --- directory -----------------------------------------------------------
  StatusOr<Ino> Lookup(const std::string& name);
  Status AddDirent(const std::string& name, Ino ino);
  Status RemoveDirent(const std::string& name);

  // --- transactions / durability ------------------------------------------
  storage::TxId TidFor(Ino ino);
  // Shared entry of the four sync flavors: fd validation, syscall charge,
  // commit, and the kFsync trace event (`b` = datasync bit | ordered<<1).
  Status SyncFile(Fd fd, bool datasync, bool ordered);
  // The fsync work for one file; datasync defers timestamp-only metadata,
  // ordered swaps every flush for an order-preserving barrier.
  Status CommitDirty(Ino ino, bool datasync, bool ordered);
  Status RunPendingTrims();
  Status WritebackForEviction(uint64_t page, const uint8_t* data,
                              storage::TxId tid);

  storage::TxBlockDevice* const dev_;
  const FsOptions options_;
  SimClock* const clock_;
  Superblock sb_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Journal> journal_;  // null in kOff mode
  std::vector<OpenFile> open_files_;
  std::unordered_map<Ino, storage::TxId> active_tid_;
  // Multi-file transaction groups: member ino -> all members (shared).
  std::unordered_map<Ino, std::shared_ptr<std::vector<Ino>>> tx_groups_;
  storage::TxId next_tid_ = 1;
  std::vector<uint32_t> pending_trims_;
  uint64_t alloc_hint_ = 0;
  trace::Tracer* tracer_ = nullptr;
  FsStats stats_;
};

}  // namespace xftl::fs

#endif  // XFTL_FS_EXT_FS_H_
