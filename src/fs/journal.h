// JBD-style physical journal: a reserved region of the device holding one
// transaction at a time. A transaction is
//
//   descriptor page | copy of page 1 | ... | copy of page N | commit page
//
// written with a barrier before (so earlier checkpoint writes are durable
// before the previous transaction's journal is overwritten) and a barrier
// after (so the commit is durable before checkpointing begins). These are
// exactly the two write barriers per fsync the paper attributes to ordered
// journaling.
#ifndef XFTL_FS_JOURNAL_H_
#define XFTL_FS_JOURNAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/block_device.h"

namespace xftl::fs {

struct JournalStats {
  uint64_t commits = 0;
  uint64_t journal_page_writes = 0;  // descriptor + copies + commit pages
  uint64_t replayed_transactions = 0;
  uint64_t replayed_pages = 0;
};

class Journal {
 public:
  Journal(storage::BlockDevice* dev, uint32_t start, uint32_t pages);

  // Maximum pages a single transaction may carry.
  uint32_t capacity() const { return pages_ - 2; }

  // Journals `pages` ({home page number, contents}) with full barriers.
  // After this returns, the transaction is durable; the caller then writes
  // the pages to their home locations (checkpointing). With `ordered` the
  // two barriers are issued as order-preserving device barriers instead of
  // flushes: the commit is ordered but possibly still in flight on return
  // (epoch-prefix durability) — on devices without ordered-command support
  // Barrier() falls back to a flush and nothing changes.
  Status CommitTransaction(
      const std::vector<std::pair<uint64_t, const uint8_t*>>& pages,
      bool ordered = false);

  // Mount-time scan: if a complete transaction is present, replays it to the
  // home locations. Idempotent.
  Status Recover();

  const JournalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = JournalStats{}; }

 private:
  storage::BlockDevice* const dev_;
  const uint32_t start_;
  const uint32_t pages_;
  uint64_t next_txid_ = 1;
  JournalStats stats_;
};

}  // namespace xftl::fs

#endif  // XFTL_FS_JOURNAL_H_
