#include "fs/journal.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "fs/fs_format.h"

namespace xftl::fs {

Journal::Journal(storage::BlockDevice* dev, uint32_t start, uint32_t pages)
    : dev_(dev), start_(start), pages_(pages) {
  CHECK_GE(pages_, 3u);
}

Status Journal::CommitTransaction(
    const std::vector<std::pair<uint64_t, const uint8_t*>>& pages,
    bool ordered) {
  if (pages.empty()) return Status::OK();
  if (pages.size() > capacity()) {
    return Status::ResourceExhausted("journal transaction too large");
  }
  const uint32_t page_size = dev_->page_size();
  auto barrier = [&] {
    return ordered ? dev_->Barrier() : dev_->FlushBarrier();
  };

  // Barrier 1: everything written before (in-place data, the previous
  // transaction's checkpoint writes) must be ordered ahead of this journal
  // write, which overwrites the previous transaction. Under epoch-prefix
  // durability the ordered variant suffices: if this descriptor survives a
  // cut, everything before barrier 1 survived too.
  XFTL_RETURN_IF_ERROR(barrier());

  // Descriptor.
  std::vector<uint8_t> buf(page_size, 0);
  uint64_t txid = next_txid_++;
  EncodeFixed32(buf.data(), kJournalDescMagic);
  EncodeFixed64(buf.data() + 4, txid);
  EncodeFixed32(buf.data() + 12, uint32_t(pages.size()));
  size_t off = 16;
  uint32_t content_crc = 0;
  for (const auto& [home, data] : pages) {
    EncodeFixed64(buf.data() + off, home);
    off += 8;
    content_crc = Crc32c(data, page_size, content_crc);
  }
  EncodeFixed32(buf.data() + page_size - 4,
                Crc32c(buf.data(), page_size - 4));
  XFTL_RETURN_IF_ERROR(dev_->Write(start_, buf.data()));
  stats_.journal_page_writes++;

  // Copies: one queued batch, striped across banks by the FTL. The commit
  // page below still serializes after them in program order, and Barrier 2
  // is what makes any of it durable.
  uint32_t jp = start_ + 1;
  std::vector<uint64_t> copy_pages(pages.size());
  std::vector<const uint8_t*> copy_datas(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    copy_pages[i] = jp++;
    copy_datas[i] = pages[i].second;
  }
  XFTL_RETURN_IF_ERROR(
      dev_->WriteBatch(copy_pages.data(), copy_datas.data(), pages.size()));
  stats_.journal_page_writes += pages.size();

  // Commit page: its checksum covers the copies, so a torn copy invalidates
  // the whole transaction.
  std::memset(buf.data(), 0, page_size);
  EncodeFixed32(buf.data(), kJournalCommitMagic);
  EncodeFixed64(buf.data() + 4, txid);
  EncodeFixed32(buf.data() + 12, content_crc);
  XFTL_RETURN_IF_ERROR(dev_->Write(jp, buf.data()));
  stats_.journal_page_writes++;

  // Barrier 2: the commit record is durable (ordered ahead of the
  // checkpoint writes, in the ordered flavor); checkpointing may begin.
  XFTL_RETURN_IF_ERROR(barrier());
  stats_.commits++;
  return Status::OK();
}

Status Journal::Recover() {
  const uint32_t page_size = dev_->page_size();
  std::vector<uint8_t> desc(page_size);
  Status s = dev_->Read(start_, desc.data());
  if (!s.ok()) return Status::OK();  // torn descriptor: nothing committed
  if (DecodeFixed32(desc.data()) != kJournalDescMagic) return Status::OK();
  if (DecodeFixed32(desc.data() + page_size - 4) !=
      Crc32c(desc.data(), page_size - 4)) {
    return Status::OK();
  }
  uint64_t txid = DecodeFixed64(desc.data() + 4);
  uint32_t count = DecodeFixed32(desc.data() + 12);
  if (count > capacity()) return Status::OK();

  // Read all copies and validate against the commit page.
  std::vector<std::vector<uint8_t>> copies(count,
                                           std::vector<uint8_t>(page_size));
  uint32_t content_crc = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Status rs = dev_->Read(start_ + 1 + i, copies[i].data());
    if (!rs.ok()) return Status::OK();  // torn copy: not committed
    content_crc = Crc32c(copies[i].data(), page_size, content_crc);
  }
  std::vector<uint8_t> commit(page_size);
  Status cs = dev_->Read(start_ + 1 + count, commit.data());
  if (!cs.ok()) return Status::OK();
  if (DecodeFixed32(commit.data()) != kJournalCommitMagic) return Status::OK();
  if (DecodeFixed64(commit.data() + 4) != txid) return Status::OK();
  if (DecodeFixed32(commit.data() + 12) != content_crc) return Status::OK();

  // Complete transaction: replay to home locations.
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t home = DecodeFixed64(desc.data() + 16 + size_t(i) * 8);
    XFTL_RETURN_IF_ERROR(dev_->Write(home, copies[i].data()));
    stats_.replayed_pages++;
  }
  XFTL_RETURN_IF_ERROR(dev_->FlushBarrier());
  stats_.replayed_transactions++;
  next_txid_ = txid + 1;
  return Status::OK();
}

}  // namespace xftl::fs
