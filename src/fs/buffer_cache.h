// A write-back buffer cache keyed by device page number, with LRU eviction
// and JBD-style pinning: dirty metadata (and, in full-journal mode, dirty
// data) must not reach its home location before the journal commits, so such
// pages are pinned and the cache grows past its nominal capacity instead of
// evicting them. Dirty data pages in ordered or off mode are evictable - in
// off mode the eviction is the "steal" path that writes uncommitted pages
// with their transaction id.
#ifndef XFTL_FS_BUFFER_CACHE_H_
#define XFTL_FS_BUFFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/block_device.h"

namespace xftl::fs {

class BufferCache {
 public:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    bool metadata = false;
    bool pinned = false;
    // Dirty only because an inode timestamp moved: fdatasync may skip the
    // page (POSIX lets it defer non-essential metadata); any substantive
    // redirtying clears the bit.
    bool ts_only = false;
    storage::TxId tid = 0;     // transaction that dirtied the page (off mode)
    uint32_t owner = ~0u;      // inode owning a data page; ~0 for metadata
    uint64_t page = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  // `writeback` persists an evicted dirty page: (page, data, tid).
  using WritebackFn =
      std::function<Status(uint64_t, const uint8_t*, storage::TxId)>;

  BufferCache(storage::TxBlockDevice* dev, size_t capacity_pages,
              WritebackFn writeback)
      : dev_(dev), capacity_(capacity_pages), writeback_(std::move(writeback)) {}

  // Returns the cached page, loading it from the device on a miss. A
  // non-zero `tid` loads through the transactional read path so a file sees
  // its own stolen (uncommitted) pages.
  StatusOr<Entry*> Get(uint64_t page, storage::TxId tid = 0);
  // Returns a zero-filled cache entry for a freshly allocated page (no
  // device read: the on-flash content is undefined).
  StatusOr<Entry*> GetZeroed(uint64_t page);

  void MarkDirty(Entry* e, bool metadata, storage::TxId tid,
                 uint32_t owner = ~0u, bool ts_only = false);
  void Unpin(Entry* e) { e->pinned = false; }

  // Drops a (clean or dirty) page without writeback; used on abort and
  // unlink.
  void Discard(uint64_t page);
  // Calls fn on every dirty entry. fn may clean/unpin entries.
  void ForEachDirty(const std::function<void(Entry*)>& fn);

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t steals() const { return steals_; }

 private:
  Status EvictIfNeeded();

  storage::TxBlockDevice* const dev_;
  const size_t capacity_;
  WritebackFn writeback_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t steals_ = 0;
};

}  // namespace xftl::fs

#endif  // XFTL_FS_BUFFER_CACHE_H_
