#include "storage/sim_ssd.h"

#include "check/xftl_fsck.h"
#include "ftl/page_ftl.h"

namespace xftl::storage {

namespace {

uint64_t LogicalPagesFor(const flash::FlashConfig& fc, const ftl::FtlConfig& cfg,
                         double utilization) {
  CHECK_GT(utilization, 0.0);
  CHECK_LT(utilization, 1.0);
  uint64_t data_pages =
      uint64_t(fc.num_blocks - cfg.meta_blocks) * fc.pages_per_block;
  uint64_t reserve = uint64_t(cfg.min_free_blocks + 2) * fc.pages_per_block;
  CHECK_GT(data_pages, reserve);
  return uint64_t(double(data_pages - reserve) * utilization);
}

}  // namespace

SsdSpec OpenSsdSpec(uint32_t num_blocks, double utilization) {
  SsdSpec spec;
  spec.flash.page_size = 8192;
  spec.flash.pages_per_block = 128;
  spec.flash.num_blocks = num_blocks;
  spec.flash.num_banks = 4;
  // The 87.5 MHz Barefoot controller moves data slowly and keeps a shallow
  // write buffer, which is why the real board's random-write IOPS are low.
  spec.flash.write_buffer_pages = 8;
  spec.flash.timings.read_page = Micros(200);
  spec.flash.timings.program_page = Micros(1300);
  spec.flash.timings.erase_block = Micros(3000);
  spec.flash.timings.bus_per_page = Micros(110);

  spec.ftl.meta_blocks = 8;
  spec.ftl.min_free_blocks = 4;
  spec.ftl.num_logical_pages = LogicalPagesFor(spec.flash, spec.ftl, utilization);

  spec.xftl.xl2p_capacity = 500;  // 8 KB table, as in the paper

  spec.sata.command_overhead = Micros(45);
  spec.sata.transfer_per_page = Micros(27);  // 8 KB at ~300 MB/s
  return spec;
}

SsdSpec S830Spec(uint32_t num_blocks, double utilization) {
  SsdSpec spec = OpenSsdSpec(num_blocks, utilization);
  // One controller generation newer: four times the interleaving, deeper
  // queues, faster sensing, SATA 6G link, and a power-loss-protected cache
  // that lets FLUSH return as soon as the write buffer drains.
  spec.flash.num_banks = 16;
  spec.flash.write_buffer_pages = 64;
  spec.flash.timings.read_page = Micros(90);
  spec.flash.timings.program_page = Micros(1200);
  spec.flash.timings.bus_per_page = Micros(25);
  spec.ftl.num_logical_pages = LogicalPagesFor(spec.flash, spec.ftl, utilization);
  spec.ftl.fast_barrier = true;
  spec.ftl.commit_mode = ftl::CommitMode::kPlp;
  spec.sata.command_overhead = Micros(8);
  spec.sata.transfer_per_page = Micros(14);  // 8 KB at ~600 MB/s
  return spec;
}

SimSsd::SimSsd(const SsdSpec& spec, SimClock* clock)
    : spec_(spec), clock_(clock) {
  flash_ = std::make_unique<flash::FlashDevice>(spec.flash, clock);
  if (spec.transactional) {
    auto x = std::make_unique<ftl::XFtl>(flash_.get(), spec.ftl, spec.xftl);
    xftl_ = x.get();
    ftl_ = std::move(x);
  } else {
    ftl_ = std::make_unique<ftl::PageFtl>(flash_.get(), spec.ftl);
  }
  sata_ = std::make_unique<SataDevice>(ftl_.get(), spec.sata, clock,
                                       spec.link_fault, spec.link_policy);
}

Status SimSsd::PowerCycle() {
  CutPower();
  return Reboot();
}

void SimSsd::CutPower() {
  // PLP firmware spends its capacitor on an emergency checkpoint: drain the
  // program buffer into the cells and persist the mapping plus the X-L2P
  // snapshot, making every acknowledged commit durable. Best effort — a
  // flash array already failing when power drops cannot take the
  // checkpoint, and recovery then falls back to the last ordinary one.
  if (xftl_ != nullptr && spec_.ftl.commit_mode == ftl::CommitMode::kPlp) {
    (void)xftl_->Checkpoint();
  }
  // Pulling the plug drops whatever the volatile program buffer still held
  // and forgets in-flight host transactions; only then does the firmware
  // boot and rebuild from what actually reached the cells. (Recover() also
  // clears the device's failed latch via ClearFailure.)
  flash_->PowerCut();
  sata_->ResetVolatile();
}

Status SimSsd::Reboot() {
  XFTL_RETURN_IF_ERROR(ftl_->Recover());
  if (spec_.fsck_on_power_cycle) {
    auto* pftl = dynamic_cast<ftl::PageFtl*>(ftl_.get());
    if (pftl != nullptr) {
      check::FsckOptions opt;
      opt.ftl = spec_.ftl;
      opt.transactional = spec_.transactional;
      check::FsckReport report = check::CheckRecovered(*flash_, opt, *pftl);
      if (!report.ok()) {
        return Status::Corruption("post-recovery fsck failed:\n" +
                                  report.Summary());
      }
    }
  }
  return Status::OK();
}

}  // namespace xftl::storage
