// SataDevice models the host <-> SSD boundary: every command pays a fixed
// command overhead plus per-page transfer time over the link, then executes
// on the FTL. The paper's extended commands (read/write with a transaction
// id, commit, abort) travel the same wire; commit and abort are encoded in
// the parameter set of trim commands, exactly as §5.2 describes for SATA.
#ifndef XFTL_STORAGE_SATA_DEVICE_H_
#define XFTL_STORAGE_SATA_DEVICE_H_

#include <cstdint>
#include <set>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/block_device.h"
#include "trace/tracer.h"
#include "xftl/xftl.h"

namespace xftl::storage {

struct SataTimings {
  // Command issue, DMA setup and completion interrupt.
  SimNanos command_overhead = Micros(20);
  // Moving one 8 KB page across the link (SATA 2.0, ~300 MB/s).
  SimNanos transfer_per_page = Micros(27);
};

struct SataStats {
  uint64_t read_commands = 0;
  uint64_t write_commands = 0;
  uint64_t trim_commands = 0;
  uint64_t barrier_commands = 0;
  // Extended-parameter trims carrying commit/abort (paper §5.2).
  uint64_t commit_commands = 0;
  uint64_t abort_commands = 0;
};

class SataDevice : public TxBlockDevice {
 public:
  // `ftl` must outlive this device. If it is an XFtl, the transactional
  // command set is available; otherwise Tx* commands degrade (TxRead/TxWrite
  // act untagged, TxCommit acts as a barrier, TxAbort fails).
  SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
             SimClock* clock);

  uint32_t page_size() const override { return ftl_->page_size(); }
  uint64_t num_pages() const override { return ftl_->num_logical_pages(); }

  Status Read(uint64_t page, uint8_t* data) override;
  Status Write(uint64_t page, const uint8_t* data) override;
  Status Trim(uint64_t page) override;
  Status FlushBarrier() override;

  bool SupportsTransactions() const override { return xftl_ != nullptr; }
  Status TxRead(TxId t, uint64_t page, uint8_t* data) override;
  Status TxWrite(TxId t, uint64_t page, const uint8_t* data) override;
  Status TxCommit(TxId t) override;
  Status TxAbort(TxId t) override;

  const SataStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SataStats{}; }
  ftl::FtlInterface* ftl() const { return ftl_; }

  // Transactions with at least one write issued and no commit/abort yet.
  // This is volatile front-end state: it does not survive a power cycle.
  const std::set<TxId>& open_transactions() const { return open_txns_; }
  // Drops all volatile front-end state (in-flight transaction ids). Called
  // by SimSsd::PowerCycle(); the FTL learns the same fact from recovery,
  // which discards the uncommitted pages those transactions wrote.
  void ResetVolatile() { open_txns_.clear(); }

  // Optional command tracing; kSata events are the capture stream a
  // TraceReplayer re-drives. Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  void ChargeCommand(bool with_transfer);
  // Records a host-visible command ending now (issue at `t0`, so the
  // latency spans link transfer plus FTL execution).
  void Note(trace::Op op, SimNanos t0, TxId t, uint64_t page,
            StatusCode code);

  ftl::FtlInterface* const ftl_;
  ftl::XFtl* const xftl_;  // non-null when ftl_ is transactional
  const SataTimings timings_;
  SimClock* const clock_;
  trace::Tracer* tracer_ = nullptr;
  SataStats stats_;
  std::set<TxId> open_txns_;
};

}  // namespace xftl::storage

#endif  // XFTL_STORAGE_SATA_DEVICE_H_
