// SataDevice models the host <-> SSD boundary: every command pays a fixed
// command overhead plus per-page transfer time over the link, then executes
// on the FTL. The paper's extended commands (read/write with a transaction
// id, commit, abort) travel the same wire; commit and abort are encoded in
// the parameter set of trim commands, exactly as §5.2 describes for SATA.
//
// Write commands are queued NCQ-style: a write returns to the host as soon
// as its data crossed the link and the FTL accepted it; the device-side
// program drains in the background. The host stalls only when all
// `ncq_depth` queue slots are occupied (it then waits for the EARLIEST
// completion, so commands retire out of submission order) or at a barrier,
// which drains the whole queue. Reads stay synchronous: their latency is
// data-dependent and the flash layer already serializes them against
// in-flight programs on the same bank. ncq_depth = 1 reproduces the legacy
// fully synchronous front-end.
#ifndef XFTL_STORAGE_SATA_DEVICE_H_
#define XFTL_STORAGE_SATA_DEVICE_H_

#include <cstdint>
#include <map>
#include <set>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/block_device.h"
#include "trace/tracer.h"
#include "xftl/xftl.h"

namespace xftl::storage {

struct SataTimings {
  // Command issue, DMA setup and completion interrupt.
  SimNanos command_overhead = Micros(20);
  // Moving one 8 KB page across the link (SATA 2.0, ~300 MB/s).
  SimNanos transfer_per_page = Micros(27);
  // Native-command-queuing slots for writes (SATA NCQ tops out at 32).
  uint32_t ncq_depth = 32;
};

struct SataStats {
  uint64_t read_commands = 0;
  // Host pages written through the front-end (a batch of n counts n here
  // and 1 in batch_commands).
  uint64_t write_commands = 0;
  uint64_t trim_commands = 0;
  uint64_t barrier_commands = 0;
  // Extended-parameter trims carrying commit/abort (paper §5.2).
  uint64_t commit_commands = 0;
  uint64_t abort_commands = 0;
  // --- queued-command accounting -----------------------------------------
  uint64_t queued_commands = 0;    // writes accepted into an NCQ slot
  uint64_t queue_full_stalls = 0;  // submits that had to wait for a slot
  uint64_t batch_commands = 0;     // WriteBatch/TxWriteBatch wire commands
  uint64_t batched_pages = 0;      // pages moved by those batches
};

class SataDevice : public TxBlockDevice {
 public:
  // `ftl` must outlive this device. If it is an XFtl, the transactional
  // command set is available; otherwise Tx* commands degrade (TxRead/TxWrite
  // act untagged, TxCommit acts as a barrier, TxAbort fails).
  SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
             SimClock* clock);

  uint32_t page_size() const override { return ftl_->page_size(); }
  uint64_t num_pages() const override { return ftl_->num_logical_pages(); }

  Status Read(uint64_t page, uint8_t* data) override;
  Status Write(uint64_t page, const uint8_t* data) override;
  Status WriteBatch(const uint64_t* pages, const uint8_t* const* datas,
                    size_t n) override;
  Status Trim(uint64_t page) override;
  Status FlushBarrier() override;

  bool SupportsTransactions() const override { return xftl_ != nullptr; }
  Status TxRead(TxId t, uint64_t page, uint8_t* data) override;
  Status TxWrite(TxId t, uint64_t page, const uint8_t* data) override;
  Status TxWriteBatch(TxId t, const uint64_t* pages,
                      const uint8_t* const* datas, size_t n) override;
  Status TxCommit(TxId t) override;
  Status TxAbort(TxId t) override;

  // --- NCQ observability ---------------------------------------------------
  // Writes whose device-side program has not yet drained at the current
  // simulated time (lazy: retires completed slots first).
  size_t InflightCommands();
  uint32_t queue_depth() const { return timings_.ncq_depth; }
  // Waits for every queued command to complete. FlushBarrier/TxCommit do
  // this implicitly; exposed for tests and workloads that want a quiesce
  // point without paying a full mapping-table flush.
  void DrainQueue();

  const SataStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SataStats{}; }
  ftl::FtlInterface* ftl() const { return ftl_; }

  // Transactions with at least one write issued and no commit/abort yet.
  // This is volatile front-end state: it does not survive a power cycle.
  const std::set<TxId>& open_transactions() const { return open_txns_; }
  // Drops all volatile front-end state (in-flight transaction ids and the
  // command queue). Called by SimSsd::PowerCycle(); the FTL learns the same
  // fact from recovery, which discards the uncommitted pages those
  // transactions wrote.
  void ResetVolatile() {
    open_txns_.clear();
    inflight_.clear();
  }

  // Optional command tracing; kSata events are the capture stream a
  // TraceReplayer re-drives. Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  void ChargeCommand(bool with_transfer);
  // Records a host-visible command ending now (issue at `t0`, so the
  // latency spans link transfer plus FTL execution). `occupancy` lands in
  // the event's `b` field; for writes it is the queue depth in use at
  // completion, 0 for everything else.
  void Note(trace::Op op, SimNanos t0, TxId t, uint64_t page, StatusCode code,
            uint64_t occupancy = 0);
  // Retires every queued command whose completion time has passed.
  void RetireCompleted();
  // Blocks (advances the clock) until a queue slot is free, then retires.
  void WaitForSlot();
  // Accounts a successful write submit: occupies a slot until the flash
  // completion time reported by the FTL.
  void EnqueueCompletion();

  ftl::FtlInterface* const ftl_;
  ftl::XFtl* const xftl_;  // non-null when ftl_ is transactional
  const SataTimings timings_;
  SimClock* const clock_;
  trace::Tracer* tracer_ = nullptr;
  SataStats stats_;
  std::set<TxId> open_txns_;
  // tag -> device-side completion time of a queued write. Tag order is
  // submission order; completion order is whatever the times say.
  std::map<uint64_t, SimNanos> inflight_;
  uint64_t next_tag_ = 1;
};

}  // namespace xftl::storage

#endif  // XFTL_STORAGE_SATA_DEVICE_H_
