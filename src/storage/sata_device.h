// SataDevice models the host <-> SSD boundary: every command pays a fixed
// command overhead plus per-page transfer time over the link, then executes
// on the FTL. The paper's extended commands (read/write with a transaction
// id, commit, abort) travel the same wire; commit and abort are encoded in
// the parameter set of trim commands, exactly as §5.2 describes for SATA.
//
// Write commands are queued NCQ-style: a write returns to the host as soon
// as its data crossed the link and the FTL accepted it; the device-side
// program drains in the background. The host stalls only when all
// `ncq_depth` queue slots are occupied (it then waits for the EARLIEST
// completion, so commands retire out of submission order) or at a barrier,
// which drains the whole queue. Reads stay synchronous: their latency is
// data-dependent and the flash layer already serializes them against
// in-flight programs on the same bank. ncq_depth = 1 reproduces the legacy
// fully synchronous front-end.
//
// Link faults (LinkFaultModel, seeded, scripted + probabilistic) model the
// transient failures a real SATA link suffers, composable with the flash
// layer's NAND FaultModel:
//   * CRC transfer errors — a data FIS is corrupted on the wire. The device
//     detects it and rejects the frame, so the data never reaches the FTL;
//     for a batch, pages that crossed before the bad frame ARE accepted and
//     only the unacknowledged suffix retransfers. Detected at submit.
//   * command timeouts — a queued tag's completion FIS is lost; the host
//     only notices when the command's deadline expires at a wait point.
//   * spurious device aborts — the device raises an error for a queued tag,
//     which (per the NCQ protocol) aborts the whole queue.
//
// Recovery follows the NCQ error protocol: on a failed tag the device
// aborts the queue, the host reads the error log (one small read command)
// to learn which tags completed, and reissues the killed ones exactly once
// from host-held copies — REDO-only: data is retained host-side until its
// completion is seen, and a reissue of the same (lpn, data) is idempotent
// through the FTL's copy-on-write path. The host escalates through a
// degradation ladder, every transition counted in SataStats and traced:
//   retry (bounded exponential backoff) -> link reset + queue rebuild ->
//   degraded qd=1 synchronous mode (restored after a clean probation) ->
//   link failed (writes rejected, reads still served — composing with the
//   FTL's read-only degradation).
// A queued write whose reissue exhausts every rung is an acknowledged write
// lost in the background: it latches an errseq-style deferred error that
// fails the NEXT FlushBarrier/TxCommit, never silently dropped.
//
// Order-preserving barriers (ftl::CommitMode::kBarrier firmware): Barrier()
// bumps the host's epoch counter, passes an ordered-flush verb down to the
// FTL (which fences the flash program scheduler — epoch membership lives
// there, not per queued tag) and returns without draining the queue, so the
// pipeline stays full across fsync points. FlushBarrier/TxCommit/TxPrepare
// then become order-only too; a deferred background loss surfaces at the
// first barrier or commit of the next epoch. AwaitDurable() keeps the
// classic completion-wait semantics for the callers that genuinely need the
// result in the cells (the array controller's 2PC commit record).
#ifndef XFTL_STORAGE_SATA_DEVICE_H_
#define XFTL_STORAGE_SATA_DEVICE_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/block_device.h"
#include "trace/tracer.h"
#include "xftl/xftl.h"

namespace xftl::storage {

struct SataTimings {
  // Command issue, DMA setup and completion interrupt.
  SimNanos command_overhead = Micros(20);
  // Moving one 8 KB page across the link (SATA 2.0, ~300 MB/s).
  SimNanos transfer_per_page = Micros(27);
  // Native-command-queuing slots for writes (SATA NCQ tops out at 32).
  uint32_t ncq_depth = 32;
};

// Transient-fault model of the host<->device link. Probabilities apply
// independently (CRC per page transferred, timeout/abort per queued
// command); deterministic scripted injection (ScriptCrcError /
// ScriptTimeout / ScriptDeviceAbort) composes with them. Everything is
// drawn from `seed`, so a faulty run is reproducible.
struct LinkFaultModel {
  double crc_error_prob = 0.0;  // per page moved across the link
  double timeout_prob = 0.0;    // per queued command: completion FIS lost
  double abort_prob = 0.0;      // per queued command: spurious device abort
  uint64_t seed = 0x5a7a11;

  bool Enabled() const {
    return crc_error_prob > 0 || timeout_prob > 0 || abort_prob > 0;
  }
};

// Host-side recovery policy: how hard the host fights before escalating a
// rung on the degradation ladder.
struct LinkRecoveryPolicy {
  // Inline re-transfers per command before the submit fails.
  uint32_t max_retries = 4;
  // Exponential backoff between retries: base << attempt.
  SimNanos backoff_base = Micros(50);
  // A queued command with no completion after this long is timed out.
  SimNanos command_deadline = Millis(5);
  // Consecutive link resets before dropping to qd=1 synchronous mode.
  uint32_t degrade_after_resets = 3;
  // Consecutive resets before the link is declared dead (writes rejected).
  uint32_t fail_after_resets = 12;
  // Clean commands in degraded mode before full queue depth is restored.
  uint64_t reprobe_after = 256;
};

struct SataStats {
  uint64_t read_commands = 0;
  // Host pages written through the front-end (a batch of n counts n here
  // and 1 in batch_commands).
  uint64_t write_commands = 0;
  uint64_t trim_commands = 0;
  uint64_t barrier_commands = 0;
  // Extended-parameter trims carrying commit/abort (paper §5.2).
  uint64_t commit_commands = 0;
  uint64_t abort_commands = 0;
  // --- array two-phase commit (extended trims, like commit/abort) ----------
  uint64_t prepare_commands = 0;        // durable PREPARE markings
  uint64_t commit_record_commands = 0;  // coordinator record writes+releases
  uint64_t resolve_commands = 0;        // in-doubt resolutions after reboot
  // --- queued-command accounting -----------------------------------------
  uint64_t queued_commands = 0;    // writes accepted into an NCQ slot
  uint64_t queue_full_stalls = 0;  // submits that had to wait for a slot
  uint64_t batch_commands = 0;     // WriteBatch/TxWriteBatch wire commands
  uint64_t batched_pages = 0;      // pages moved by those batches
  // --- link faults and NCQ error recovery ---------------------------------
  uint64_t crc_errors = 0;        // CRC-rejected transfers (submit side)
  uint64_t command_timeouts = 0;  // queued tags whose completion was lost
  uint64_t device_aborts = 0;     // spurious device-side tag errors
  uint64_t link_retries = 0;      // inline re-transfers after a CRC error
  uint64_t link_resets = 0;       // queue aborts + error-log reads + rebuilds
  uint64_t aborted_tags = 0;      // in-flight tags killed by a queue abort
  uint64_t reissued_commands = 0; // REDO reissues of killed tags
  uint64_t reissued_pages = 0;    // pages those reissues carried
  uint64_t backoff_nanos = 0;     // simulated time spent backing off
  uint64_t degraded_entries = 0;  // transitions into qd=1 synchronous mode
  uint64_t degraded_exits = 0;    // probation passed, full depth restored
  uint64_t link_failures = 0;     // final rung: writes rejected for good
  // Acknowledged writes lost in the background (errseq-style latch).
  uint64_t deferred_errors = 0;           // failures latched
  uint64_t deferred_errors_reported = 0;  // surfaced at a barrier/commit
  // In-flight NCQ state dropped by a power cut (ResetVolatile).
  uint64_t dropped_on_power_cut = 0;        // tags
  uint64_t dropped_pages_on_power_cut = 0;  // pages those tags carried
  // --- MVCC snapshot reads (extended commands) -----------------------------
  uint64_t snap_pin_commands = 0;    // pins opened on the device
  uint64_t snap_unpin_commands = 0;  // pins released
  uint64_t snap_read_commands = 0;   // version-aware page reads

  // Field-wise sum: aggregates per-device front-end counters into an
  // array-wide view (the workload harness over a host::StripedVolume).
  void Add(const SataStats& o) {
    read_commands += o.read_commands;
    write_commands += o.write_commands;
    trim_commands += o.trim_commands;
    barrier_commands += o.barrier_commands;
    commit_commands += o.commit_commands;
    abort_commands += o.abort_commands;
    prepare_commands += o.prepare_commands;
    commit_record_commands += o.commit_record_commands;
    resolve_commands += o.resolve_commands;
    queued_commands += o.queued_commands;
    queue_full_stalls += o.queue_full_stalls;
    batch_commands += o.batch_commands;
    batched_pages += o.batched_pages;
    crc_errors += o.crc_errors;
    command_timeouts += o.command_timeouts;
    device_aborts += o.device_aborts;
    link_retries += o.link_retries;
    link_resets += o.link_resets;
    aborted_tags += o.aborted_tags;
    reissued_commands += o.reissued_commands;
    reissued_pages += o.reissued_pages;
    backoff_nanos += o.backoff_nanos;
    degraded_entries += o.degraded_entries;
    degraded_exits += o.degraded_exits;
    link_failures += o.link_failures;
    deferred_errors += o.deferred_errors;
    deferred_errors_reported += o.deferred_errors_reported;
    dropped_on_power_cut += o.dropped_on_power_cut;
    dropped_pages_on_power_cut += o.dropped_pages_on_power_cut;
    snap_pin_commands += o.snap_pin_commands;
    snap_unpin_commands += o.snap_unpin_commands;
    snap_read_commands += o.snap_read_commands;
  }
};

class SataDevice : public TxBlockDevice {
 public:
  // `ftl` must outlive this device. If it is an XFtl, the transactional
  // command set is available; otherwise Tx* commands degrade (TxRead/TxWrite
  // act untagged, TxCommit acts as a barrier, TxAbort fails).
  SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
             SimClock* clock, const LinkFaultModel& fault = {},
             const LinkRecoveryPolicy& policy = {});

  uint32_t page_size() const override { return ftl_->page_size(); }
  uint64_t num_pages() const override { return ftl_->num_logical_pages(); }

  Status Read(uint64_t page, uint8_t* data) override;
  Status Write(uint64_t page, const uint8_t* data) override;
  Status WriteBatch(const uint64_t* pages, const uint8_t* const* datas,
                    size_t n, size_t* accepted = nullptr) override;
  Status Trim(uint64_t page) override;
  Status FlushBarrier() override;
  Status Barrier() override;
  // Completion-wait durability point regardless of commit mode: drains the
  // queue, surfaces any deferred error, and runs a full FTL flush. Under
  // kBarrier firmware the ordinary barrier verbs are order-only; callers
  // that must have the bits in the cells before proceeding (2PC commit
  // records) use this instead.
  Status AwaitDurable();

  bool SupportsTransactions() const override { return xftl_ != nullptr; }
  Status TxRead(TxId t, uint64_t page, uint8_t* data) override;
  Status TxWrite(TxId t, uint64_t page, const uint8_t* data) override;
  Status TxWriteBatch(TxId t, const uint64_t* pages,
                      const uint8_t* const* datas, size_t n,
                      size_t* accepted = nullptr) override;
  Status TxCommit(TxId t) override;
  Status TxAbort(TxId t) override;

  // --- array two-phase commit ----------------------------------------------
  // The cross-device commands host::StripedVolume uses to commit one
  // transaction atomically across members. They travel the wire as extended
  // trims, exactly like commit/abort. All require a transactional FTL.
  // Phase 1: durably retain both versions of `t`'s pages (XFtl::TxPrepare).
  // Pays the same barrier discipline as TxCommit (drain, or PLP poll).
  Status TxPrepare(TxId t);
  // Coordinator-only commit record (write / release). Queries are free: they
  // read controller DRAM, no wire command.
  Status WriteCommitRecord(TxId t);
  Status ReleaseCommitRecord(TxId t);
  bool HasCommitRecord(TxId t) const;
  std::vector<TxId> CommitRecords() const;
  std::vector<TxId> InDoubtTransactions() const;
  // Post-reboot resolution of an in-doubt transaction (REDO forward when
  // `commit`, abort to the pre-image otherwise). Idempotent per member.
  Status ResolveInDoubt(TxId t, bool commit);

  // --- MVCC snapshot reads -------------------------------------------------
  // Pin/unpin travel the wire as extended trims (like commit/abort); the
  // snapshot read is a read command with the epoch in the parameter set.
  // All require a transactional FTL with version retention.
  bool SupportsSnapshots() const override { return xftl_ != nullptr; }
  StatusOr<uint64_t> SnapPin() override;
  Status SnapUnpin(uint64_t epoch) override;
  Status SnapRead(uint64_t epoch, uint64_t page, uint8_t* data) override;

  // --- NCQ observability ---------------------------------------------------
  // Writes whose device-side program has not yet drained at the current
  // simulated time (lazy: retires completed slots first, but never triggers
  // error recovery — safe to call on a dead device).
  size_t InflightCommands();
  uint32_t queue_depth() const { return timings_.ncq_depth; }
  // Waits for every queued command to complete, running the NCQ error
  // protocol on any tag that faults along the way. FlushBarrier/TxCommit do
  // this implicitly; exposed for tests and workloads that want a quiesce
  // point without paying a full mapping-table flush.
  void DrainQueue();

  // --- link-fault injection ------------------------------------------------
  // One-shot scripted faults, composing with the probabilistic model:
  // the `countdown`-th page transferred from now is CRC-corrupted (1 = the
  // very next transfer)…
  void ScriptCrcError(uint64_t countdown);
  // …or the `countdown`-th command accepted into an NCQ slot from now loses
  // its completion / is spuriously aborted by the device.
  void ScriptTimeout(uint64_t countdown);
  void ScriptDeviceAbort(uint64_t countdown);

  // Degradation-ladder state (see header comment).
  bool degraded() const { return degraded_; }
  bool link_failed() const { return link_failed_; }
  // Pending errseq-style error from an acknowledged write lost in the
  // background; the next FlushBarrier/TxCommit will report and clear it.
  bool has_deferred_error() const { return !deferred_error_.ok(); }

  const SataStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SataStats{}; }
  ftl::FtlInterface* ftl() const { return ftl_; }
  ftl::CommitMode commit_mode() const { return ftl_->commit_mode(); }
  // Barrier epoch the next queued write will be tagged with (volatile host
  // state; a power cut or link reset restarts it).
  uint64_t barrier_epoch() const { return barrier_epoch_; }

  // Transactions with at least one write issued and no commit/abort yet.
  // This is volatile front-end state: it does not survive a power cycle.
  const std::set<TxId>& open_transactions() const { return open_txns_; }
  // Drops all volatile front-end state: in-flight transaction ids, the
  // command queue (counted in dropped_on_power_cut /
  // dropped_pages_on_power_cut), the deferred-error latch and the
  // degradation-ladder state (a reboot re-trains the link). Called by
  // SimSsd::PowerCycle(); the FTL learns the same fact from recovery, which
  // discards the uncommitted pages those transactions wrote.
  void ResetVolatile();

  // Optional command tracing; kSata events are the capture stream a
  // TraceReplayer re-drives. Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  // How a queued tag will end: sampled at enqueue, discovered by the host
  // when the completion (or its absence) becomes visible.
  enum class TagFate : uint8_t { kClean, kTimeout, kAbort };
  // Fault kinds as recorded in the `b` field of kLinkFault trace events.
  enum LinkFaultKind : uint64_t { kCrc = 0, kTimeoutKind = 1, kAbortKind = 2 };

  struct InflightCmd {
    SimNanos submitted = 0;
    SimNanos done = 0;  // device-side completion time
    TagFate fate = TagFate::kClean;
    TxId txn = ftl::kNoTx;
    std::vector<uint64_t> pages;
    // Host-held page images (REDO source), pages.size() * page_size bytes.
    std::vector<uint8_t> data;
  };

  void ChargeCommand(bool with_transfer);
  // Records a host-visible command ending now (issue at `t0`, so the
  // latency spans link transfer plus FTL execution). `occupancy` lands in
  // the event's `b` field; for writes it is the queue depth in use at
  // completion, for kLinkFault the fault kind, for kLinkReset the reissued
  // page count, for kDegrade the new mode (1 enter qd=1, 0 restore, 2 link
  // failed); 0 for everything else.
  void Note(trace::Op op, SimNanos t0, TxId t, uint64_t page, StatusCode code,
            uint64_t occupancy = 0);
  // Fails fast once the final ladder rung rejected the link for writes.
  Status CheckLink() const;
  // Synchronous read with CRC retransfer retries (bounded backoff). Read
  // CRC faults never climb the ladder: they say nothing about queued-write
  // loss, and reads must keep working under the read-only degradations.
  Status LinkRead(TxId t, uint64_t page, uint8_t* data);
  uint32_t EffectiveDepth() const { return degraded_ ? 1 : timings_.ncq_depth; }
  // True if the `countdown`-th transfer fault (scripted or sampled) fires.
  bool TransferFaults();
  TagFate SampleFate();
  // Host-visible event time of a queued tag: completion for clean tags,
  // error signal for aborts, deadline expiry for timeouts.
  SimNanos EventTime(const InflightCmd& cmd) const;
  bool Discoverable(const InflightCmd& cmd, SimNanos now) const;
  SimNanos NextQueueEvent() const;
  // Retires clean tags whose completion time has passed. Never recovers.
  void RetireClean();
  // RetireClean + run the NCQ error protocol on any discoverable fault.
  void PollQueue();
  // Blocks (advances the clock) until a queue slot is free under the
  // effective depth, polling faults along the way.
  void WaitForSlot();
  // The NCQ error protocol for the discoverable tag `failed_tag`: abort the
  // queue, read the error log, retire tags the log reports complete, and
  // REDO-reissue the killed ones from host-held data.
  void RecoverQueue(uint64_t failed_tag);
  // Wire + FTL submit of `n` pages as one command (or a retried suffix):
  // per-page CRC sampling, bounded exponential backoff, partial-acceptance
  // tracking. `*accepted` is the count of pages durably accepted by the FTL.
  Status SubmitPayload(TxId t, const uint64_t* pages,
                       const uint8_t* const* datas, size_t n,
                       size_t* accepted);
  // Routes to Write/WriteBatch or TxWrite/TxWriteBatch on the FTL.
  Status ExecuteWrite(TxId t, const uint64_t* pages,
                      const uint8_t* const* datas, size_t n,
                      size_t* ftl_accepted);
  // Accounts a successful submit: occupies a slot until the flash
  // completion time reported by the FTL, holding the page images for REDO
  // and sampling the tag's fate. In degraded mode the write then completes
  // synchronously.
  void EnqueueCompletion(TxId t, const uint64_t* pages,
                         const uint8_t* const* datas, size_t n);
  void NoteCleanCommand();
  // Ladder rungs 2 and 3: qd=1 synchronous mode, then link failure.
  void EnterDegraded();
  void ExitDegraded();
  void EscalateLadder();
  // Latches an errseq-style error for an acknowledged write lost in the
  // background; reported (and cleared) by the next barrier/commit.
  void DeferError(const Status& s);
  Status TakeDeferredError();
  // The pre-commit queue discipline shared by TxCommit/TxPrepare: kDrain
  // waits for every queued write, kBarrier and kPlp only poll (the verb is
  // ordered behind them inside the controller).
  void OrderCommit();

  ftl::FtlInterface* const ftl_;
  ftl::XFtl* const xftl_;  // non-null when ftl_ is transactional
  const SataTimings timings_;
  const LinkFaultModel fault_;
  const LinkRecoveryPolicy policy_;
  SimClock* const clock_;
  trace::Tracer* tracer_ = nullptr;
  SataStats stats_;
  std::set<TxId> open_txns_;
  // tag -> queued command. Tag order is submission order; completion order
  // is whatever the times say.
  std::map<uint64_t, InflightCmd> inflight_;
  uint64_t next_tag_ = 1;
  // lpn -> newest tag that wrote it (including already-retired tags). The
  // host consults this during queue recovery so a REDO reissue of an old
  // killed tag never rolls back a newer acknowledged write to the same lpn.
  std::unordered_map<uint64_t, uint64_t> last_write_tag_;
  // Link-fault state.
  Rng fault_rng_;
  std::vector<uint64_t> scripted_crc_;       // absolute transfer numbers
  std::vector<uint64_t> scripted_timeouts_;  // absolute enqueue numbers
  std::vector<uint64_t> scripted_aborts_;
  uint64_t transfer_ops_ = 0;
  uint64_t enqueue_ops_ = 0;
  // Barrier epoch counter (kBarrier firmware); tags queued writes and is
  // bumped by Barrier(). Volatile: ResetVolatile restarts it, and recovery
  // re-derives ordering from what reached the cells.
  uint64_t barrier_epoch_ = 0;
  // Degradation-ladder state.
  bool in_recovery_ = false;
  bool degraded_ = false;
  bool link_failed_ = false;
  uint32_t consecutive_resets_ = 0;
  uint64_t clean_streak_ = 0;
  Status deferred_error_;
};

}  // namespace xftl::storage

#endif  // XFTL_STORAGE_SATA_DEVICE_H_
