// Block-device abstractions used by the file system layer.
//
// BlockDevice is the classic interface: page-granular read/write/trim plus a
// write barrier. TxBlockDevice is the paper's extended abstraction: the same
// operations carry a transaction id, and commit/abort commands control
// atomicity at the device (paper §4.2).
#ifndef XFTL_STORAGE_BLOCK_DEVICE_H_
#define XFTL_STORAGE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "xftl/xftl.h"

namespace xftl::storage {

using TxId = ftl::TxId;

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t page_size() const = 0;
  virtual uint64_t num_pages() const = 0;

  virtual Status Read(uint64_t page, uint8_t* data) = 0;
  virtual Status Write(uint64_t page, const uint8_t* data) = 0;
  // Batched write: n pages handed to the device as one queued command.
  // Devices that understand queuing overlap the device-side work across
  // banks; the default just loops. Stops at the first error; `accepted`
  // (optional) reports how many leading pages the device durably accepted,
  // so a caller can tell a clean failure from a torn batch and reissue only
  // the rejected suffix.
  virtual Status WriteBatch(const uint64_t* pages, const uint8_t* const* datas,
                            size_t n, size_t* accepted = nullptr) {
    for (size_t i = 0; i < n; ++i) {
      Status s = Write(pages[i], datas[i]);
      if (!s.ok()) {
        if (accepted != nullptr) *accepted = i;
        return s;
      }
    }
    if (accepted != nullptr) *accepted = n;
    return Status::OK();
  }
  virtual Status Trim(uint64_t page) = 0;
  // Durability barrier: all previously acknowledged writes (and the device's
  // mapping metadata) are persistent when this returns.
  virtual Status FlushBarrier() = 0;
  // Order-preserving barrier: writes before it reach the medium before any
  // write after it, but need not have reached it when this returns
  // (epoch-prefix durability). Devices without ordered-command support fall
  // back to the full FlushBarrier.
  virtual Status Barrier() { return FlushBarrier(); }
};

// The extended command set. A device reports whether it actually implements
// transactions; callers fall back to journaling when it does not.
class TxBlockDevice : public BlockDevice {
 public:
  virtual bool SupportsTransactions() const = 0;

  virtual Status TxRead(TxId t, uint64_t page, uint8_t* data) = 0;
  virtual Status TxWrite(TxId t, uint64_t page, const uint8_t* data) = 0;
  // Batched TxWrite under one transaction; same contract as WriteBatch
  // (including the `accepted` prefix count on failure).
  virtual Status TxWriteBatch(TxId t, const uint64_t* pages,
                              const uint8_t* const* datas, size_t n,
                              size_t* accepted = nullptr) {
    for (size_t i = 0; i < n; ++i) {
      Status s = TxWrite(t, pages[i], datas[i]);
      if (!s.ok()) {
        if (accepted != nullptr) *accepted = i;
        return s;
      }
    }
    if (accepted != nullptr) *accepted = n;
    return Status::OK();
  }
  // Commit/abort are carried over the wire as extended trim commands
  // (paper §5.2); semantically they are first-class verbs.
  virtual Status TxCommit(TxId t) = 0;
  virtual Status TxAbort(TxId t) = 0;

  // --- MVCC snapshot reads (beyond the paper) -----------------------------
  // A device that retains committed pre-images (X-FTL's X-L2P) can pin the
  // current commit epoch and serve page reads as of that pin while a writer
  // proceeds. Devices without version retention report no support and the
  // host falls back to reading through its own cache coherency.
  virtual bool SupportsSnapshots() const { return false; }
  // Pins the current commit epoch; the returned token names the snapshot.
  virtual StatusOr<uint64_t> SnapPin() {
    return Status::NotSupported("snapshot reads");
  }
  // Releases a pin. Lenient: unknown epochs (e.g. after a device reboot
  // discarded all pins) are a no-op.
  virtual Status SnapUnpin(uint64_t epoch) {
    return Status::NotSupported("snapshot reads");
  }
  // Reads `page` as of pinned epoch `epoch`.
  virtual Status SnapRead(uint64_t epoch, uint64_t page, uint8_t* data) {
    return Status::NotSupported("snapshot reads");
  }
};

}  // namespace xftl::storage

#endif  // XFTL_STORAGE_BLOCK_DEVICE_H_
