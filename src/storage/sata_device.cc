#include "storage/sata_device.h"

#include <algorithm>
#include <utility>

namespace xftl::storage {

namespace {

// One-shot scripted fault lists hold absolute operation numbers; a match
// consumes the entry so each script fires exactly once.
bool Fires(std::vector<uint64_t>* scripted, uint64_t op) {
  auto it = std::find(scripted->begin(), scripted->end(), op);
  if (it == scripted->end()) return false;
  scripted->erase(it);
  return true;
}

}  // namespace

SataDevice::SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
                       SimClock* clock, const LinkFaultModel& fault,
                       const LinkRecoveryPolicy& policy)
    : ftl_(ftl),
      xftl_(dynamic_cast<ftl::XFtl*>(ftl)),
      timings_(timings),
      fault_(fault),
      policy_(policy),
      clock_(clock),
      fault_rng_(fault.seed) {
  CHECK(ftl_ != nullptr);
  CHECK(timings_.ncq_depth >= 1);
  CHECK(policy_.fail_after_resets > policy_.degrade_after_resets);
}

void SataDevice::ChargeCommand(bool with_transfer) {
  SimNanos cost = timings_.command_overhead;
  if (with_transfer) cost += timings_.transfer_per_page;
  clock_->Advance(cost);
}

void SataDevice::Note(trace::Op op, SimNanos t0, TxId t, uint64_t page,
                      StatusCode code, uint64_t occupancy) {
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kSata, op, t0, static_cast<uint32_t>(t),
                    page, occupancy, clock_->Now() - t0, code);
  }
}

Status SataDevice::CheckLink() const {
  if (link_failed_) {
    return Status::IoError("SATA link failed: write commands rejected");
  }
  return Status::OK();
}

// --- link-fault sampling ---------------------------------------------------

void SataDevice::ScriptCrcError(uint64_t countdown) {
  CHECK(countdown >= 1);
  scripted_crc_.push_back(transfer_ops_ + countdown);
}

void SataDevice::ScriptTimeout(uint64_t countdown) {
  CHECK(countdown >= 1);
  scripted_timeouts_.push_back(enqueue_ops_ + countdown);
}

void SataDevice::ScriptDeviceAbort(uint64_t countdown) {
  CHECK(countdown >= 1);
  scripted_aborts_.push_back(enqueue_ops_ + countdown);
}

bool SataDevice::TransferFaults() {
  transfer_ops_++;
  if (Fires(&scripted_crc_, transfer_ops_)) return true;
  return fault_.crc_error_prob > 0 &&
         fault_rng_.Bernoulli(fault_.crc_error_prob);
}

SataDevice::TagFate SataDevice::SampleFate() {
  enqueue_ops_++;
  if (Fires(&scripted_timeouts_, enqueue_ops_)) return TagFate::kTimeout;
  if (Fires(&scripted_aborts_, enqueue_ops_)) return TagFate::kAbort;
  if (fault_.timeout_prob > 0 && fault_rng_.Bernoulli(fault_.timeout_prob)) {
    return TagFate::kTimeout;
  }
  if (fault_.abort_prob > 0 && fault_rng_.Bernoulli(fault_.abort_prob)) {
    return TagFate::kAbort;
  }
  return TagFate::kClean;
}

// --- queue bookkeeping -----------------------------------------------------

SimNanos SataDevice::EventTime(const InflightCmd& cmd) const {
  // A timed-out tag has no completion FIS: the host only sees its deadline
  // expire. Aborts surface when the device would have finished the command.
  if (cmd.fate == TagFate::kTimeout) {
    return cmd.submitted + policy_.command_deadline;
  }
  return cmd.done;
}

bool SataDevice::Discoverable(const InflightCmd& cmd, SimNanos now) const {
  return cmd.fate != TagFate::kClean && EventTime(cmd) <= now;
}

SimNanos SataDevice::NextQueueEvent() const {
  CHECK(!inflight_.empty());
  SimNanos earliest = EventTime(inflight_.begin()->second);
  for (const auto& [tag, cmd] : inflight_) {
    earliest = std::min(earliest, EventTime(cmd));
  }
  return earliest;
}

void SataDevice::RetireClean() {
  SimNanos now = clock_->Now();
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.fate == TagFate::kClean && it->second.done <= now) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void SataDevice::PollQueue() {
  RetireClean();
  if (in_recovery_) return;
  bool again = true;
  while (again) {
    again = false;
    for (const auto& [tag, cmd] : inflight_) {
      if (Discoverable(cmd, clock_->Now())) {
        RecoverQueue(tag);
        RetireClean();
        again = true;
        break;
      }
    }
  }
}

void SataDevice::WaitForSlot() {
  PollQueue();
  if (inflight_.size() < EffectiveDepth()) return;
  // Queue full: wait for the EARLIEST host-visible event among the queued
  // commands, whatever its submission order - this is what makes completion
  // out-of-order. After PollQueue every remaining event is in the future,
  // so each pass advances the clock.
  stats_.queue_full_stalls++;
  while (inflight_.size() >= EffectiveDepth()) {
    clock_->AdvanceTo(NextQueueEvent());
    PollQueue();
  }
}

void SataDevice::DrainQueue() {
  PollQueue();
  while (!inflight_.empty()) {
    clock_->AdvanceTo(NextQueueEvent());
    PollQueue();
  }
}

size_t SataDevice::InflightCommands() {
  // Deliberately no PollQueue: callers (the crash sweep in particular) read
  // this on a device that may already be dead, and observation must not
  // kick off recovery I/O.
  RetireClean();
  return inflight_.size();
}

void SataDevice::EnqueueCompletion(TxId t, const uint64_t* pages,
                                   const uint8_t* const* datas, size_t n) {
  stats_.queued_commands++;
  InflightCmd cmd;
  cmd.submitted = clock_->Now();
  cmd.done = ftl_->LastCompletionTime();
  cmd.txn = t;
  cmd.fate = SampleFate();
  cmd.pages.assign(pages, pages + n);
  const uint32_t psz = ftl_->page_size();
  cmd.data.resize(size_t{n} * psz);
  for (size_t i = 0; i < n; ++i) {
    std::copy(datas[i], datas[i] + psz, cmd.data.begin() + i * psz);
  }
  for (size_t i = 0; i < n; ++i) last_write_tag_[pages[i]] = next_tag_;
  inflight_[next_tag_++] = std::move(cmd);
  // Degraded rung: qd=1 synchronous mode - the command (and any fault it
  // suffers) resolves before the submit returns. Recovery's own reissues
  // are drained by the enclosing Wait/Drain loop instead.
  if (degraded_ && !in_recovery_) DrainQueue();
}

// --- degradation ladder ----------------------------------------------------

void SataDevice::NoteCleanCommand() {
  if (in_recovery_) return;
  clean_streak_++;
  if (degraded_) {
    if (!link_failed_ && clean_streak_ >= policy_.reprobe_after) {
      ExitDegraded();
    }
  } else if (clean_streak_ >= 32) {
    // A healthy stretch forgives past resets so isolated faults spread over
    // a long run do not creep toward degradation.
    consecutive_resets_ = 0;
  }
}

void SataDevice::EnterDegraded() {
  degraded_ = true;
  clean_streak_ = 0;
  stats_.degraded_entries++;
  Note(trace::Op::kDegrade, clock_->Now(), ftl::kNoTx, 1, StatusCode::kOk,
       consecutive_resets_);
}

void SataDevice::ExitDegraded() {
  degraded_ = false;
  consecutive_resets_ = 0;
  clean_streak_ = 0;
  stats_.degraded_exits++;
  Note(trace::Op::kDegrade, clock_->Now(), ftl::kNoTx, 0, StatusCode::kOk, 0);
}

void SataDevice::EscalateLadder() {
  if (!degraded_) {
    EnterDegraded();
  } else if (!link_failed_) {
    link_failed_ = true;
    stats_.link_failures++;
    Note(trace::Op::kDegrade, clock_->Now(), ftl::kNoTx, 2,
         StatusCode::kIoError, consecutive_resets_);
  }
}

void SataDevice::DeferError(const Status& s) {
  stats_.deferred_errors++;
  if (deferred_error_.ok()) deferred_error_ = s;
}

Status SataDevice::TakeDeferredError() {
  if (deferred_error_.ok()) return Status::OK();
  stats_.deferred_errors_reported++;
  Status s = deferred_error_;
  deferred_error_ = Status::OK();
  return s;
}

// --- submit path -----------------------------------------------------------

Status SataDevice::ExecuteWrite(TxId t, const uint64_t* pages,
                                const uint8_t* const* datas, size_t n,
                                size_t* ftl_accepted) {
  *ftl_accepted = 0;
  if (t == ftl::kNoTx || xftl_ == nullptr) {
    if (n == 1) {
      Status s = ftl_->Write(pages[0], datas[0]);
      if (s.ok()) *ftl_accepted = 1;
      return s;
    }
    return ftl_->WriteBatch(pages, datas, n, ftl_accepted);
  }
  if (n == 1) {
    Status s = xftl_->TxWrite(t, pages[0], datas[0]);
    if (s.ok()) *ftl_accepted = 1;
    return s;
  }
  return xftl_->TxWriteBatch(t, pages, datas, n, ftl_accepted);
}

Status SataDevice::SubmitPayload(TxId t, const uint64_t* pages,
                                 const uint8_t* const* datas, size_t n,
                                 size_t* accepted) {
  size_t acc = 0;
  uint32_t attempt = 0;
  while (true) {
    // One command frame, then per-page data FISes until a CRC fault kills
    // the stream. The corrupted frame's transfer time is still paid.
    const size_t remaining = n - acc;
    size_t crossed = 0;
    bool faulted = false;
    SimNanos wire = timings_.command_overhead;
    for (size_t i = 0; i < remaining; ++i) {
      wire += timings_.transfer_per_page;
      if (TransferFaults()) {
        faulted = true;
        break;
      }
      crossed++;
    }
    clock_->Advance(wire);
    if (crossed > 0) {
      // Frames before the bad one were accepted by the device: hand them to
      // the FTL now, so a retry moves only the unacknowledged suffix.
      size_t ftl_acc = 0;
      Status fs = ExecuteWrite(t, pages + acc, datas + acc, crossed, &ftl_acc);
      acc += ftl_acc;
      if (!fs.ok()) {
        if (accepted != nullptr) *accepted = acc;
        return fs;
      }
    }
    if (!faulted) break;
    stats_.crc_errors++;
    SimNanos f0 = clock_->Now();
    if (attempt >= policy_.max_retries) {
      Note(trace::Op::kLinkFault, f0, t, pages[acc], StatusCode::kIoError,
           kCrc);
      EscalateLadder();
      if (accepted != nullptr) *accepted = acc;
      return Status::IoError("SATA link: CRC retries exhausted");
    }
    SimNanos backoff = policy_.backoff_base << attempt;
    clock_->Advance(backoff);
    stats_.backoff_nanos += backoff;
    stats_.link_retries++;
    attempt++;
    // The kLinkFault event's latency carries the backoff this retry cost.
    Note(trace::Op::kLinkFault, f0, t, pages[acc], StatusCode::kOk, kCrc);
  }
  if (accepted != nullptr) *accepted = n;
  if (attempt == 0) NoteCleanCommand();
  return Status::OK();
}

// --- NCQ error protocol ----------------------------------------------------

void SataDevice::RecoverQueue(uint64_t failed_tag) {
  in_recovery_ = true;
  SimNanos t0 = clock_->Now();
  TxId failed_txn;
  {
    const InflightCmd& failed = inflight_.at(failed_tag);
    failed_txn = failed.txn;
    LinkFaultKind kind;
    if (failed.fate == TagFate::kTimeout) {
      stats_.command_timeouts++;
      kind = kTimeoutKind;
    } else {
      stats_.device_aborts++;
      kind = kAbortKind;
    }
    Note(trace::Op::kLinkFault, t0, failed.txn,
         failed.pages.empty() ? 0 : failed.pages.front(),
         StatusCode::kIoError, kind);
  }
  // The device aborts the whole queue; the host reads the NCQ error log
  // (one small synchronous read) to learn which tags completed.
  clock_->Advance(timings_.command_overhead + timings_.transfer_per_page);
  stats_.link_resets++;
  consecutive_resets_++;
  clean_streak_ = 0;

  // Partition by what the log says. A tag whose device-side work finished
  // before the abort is complete - even a timed-out one (only its
  // completion FIS was lost) - and retires WITHOUT reissue: exactly-once.
  // Aborted tags and tags the abort caught mid-flight are killed.
  const SimNanos now = clock_->Now();
  std::vector<std::pair<uint64_t, InflightCmd>> redo;
  for (auto& [tag, cmd] : inflight_) {
    const bool completed = cmd.fate != TagFate::kAbort && cmd.done <= now;
    if (!completed) redo.emplace_back(tag, std::move(cmd));
  }
  stats_.aborted_tags += redo.size();
  inflight_.clear();

  if (!degraded_ && consecutive_resets_ >= policy_.degrade_after_resets) {
    EnterDegraded();
  }
  const bool give_up = consecutive_resets_ >= policy_.fail_after_resets;

  // REDO-only reissue in submission order, exactly once per killed tag: the
  // host still holds every unacknowledged page image, and re-writing the
  // same (lpn, data) is idempotent through the FTL's copy-on-write path.
  // Reissues execute in the CURRENT flash epoch even when the killed tag
  // was queued epochs ago — moving a write later never violates
  // epoch-prefix ordering, so the host tracks no per-tag epoch.
  uint64_t reissued_pages = 0;
  for (auto& [tag, cmd] : redo) {
    // Drop pages a newer tag also wrote (whether that tag already retired,
    // completed per the error log, or is itself about to be reissued later
    // in this loop): REDOing the older image would silently roll the newer
    // acknowledged write back.
    const uint32_t psz = ftl_->page_size();
    std::vector<uint64_t> pages;
    std::vector<const uint8_t*> ptrs;
    for (size_t i = 0; i < cmd.pages.size(); ++i) {
      auto it = last_write_tag_.find(cmd.pages[i]);
      if (it != last_write_tag_.end() && it->second > tag) continue;
      pages.push_back(cmd.pages[i]);
      ptrs.push_back(cmd.data.data() + i * psz);
    }
    if (pages.empty()) continue;  // fully superseded: nothing to redo
    if (give_up || link_failed_) {
      // Past the last rung: these acknowledged writes are lost for good.
      // Latch the loss so the next barrier/commit reports it.
      if (!link_failed_) {
        link_failed_ = true;
        stats_.link_failures++;
        Note(trace::Op::kDegrade, clock_->Now(), ftl::kNoTx, 2,
             StatusCode::kIoError, consecutive_resets_);
      }
      DeferError(Status::IoError("SATA link dead: queued write dropped"));
      continue;
    }
    const size_t n = pages.size();
    stats_.reissued_commands++;
    stats_.reissued_pages += n;
    reissued_pages += n;
    size_t acc = 0;
    SimNanos w0 = clock_->Now();
    Status s = SubmitPayload(cmd.txn, pages.data(), ptrs.data(), n, &acc);
    // Reissues are real wire commands: capture them so replay reproduces
    // the exact stream, duplicate (idempotent) writes included.
    trace::Op op =
        cmd.txn == ftl::kNoTx ? trace::Op::kWrite : trace::Op::kTxWrite;
    for (size_t i = 0; i < n; ++i) {
      Note(op, w0, cmd.txn, pages[i],
           i < acc ? StatusCode::kOk : s.code(), inflight_.size() + 1);
    }
    if (acc > 0) EnqueueCompletion(cmd.txn, pages.data(), ptrs.data(), acc);
    if (!s.ok()) {
      // The host acknowledged this write long ago; losing it now is a
      // background failure - errseq semantics, never silent. (SubmitPayload
      // already climbed the ladder if the loss was a CRC exhaustion.)
      DeferError(s);
    }
  }
  Note(trace::Op::kLinkReset, t0, failed_txn, failed_tag, StatusCode::kOk,
       reissued_pages);
  in_recovery_ = false;
}

// --- command set -----------------------------------------------------------

Status SataDevice::LinkRead(TxId t, uint64_t page, uint8_t* data) {
  for (uint32_t attempt = 0;; ++attempt) {
    ChargeCommand(true);
    Status s = (t == ftl::kNoTx || xftl_ == nullptr)
                   ? ftl_->Read(page, data)
                   : xftl_->TxRead(t, page, data);
    if (!s.ok()) return s;         // device-side error, not a link problem
    if (!TransferFaults()) return s;  // data crossed intact
    stats_.crc_errors++;
    SimNanos f0 = clock_->Now();
    if (attempt >= policy_.max_retries) {
      Note(trace::Op::kLinkFault, f0, t, page, StatusCode::kIoError, kCrc);
      return Status::IoError("SATA link: read CRC retries exhausted");
    }
    SimNanos backoff = policy_.backoff_base << attempt;
    clock_->Advance(backoff);
    stats_.backoff_nanos += backoff;
    stats_.link_retries++;
    Note(trace::Op::kLinkFault, f0, t, page, StatusCode::kOk, kCrc);
  }
}

Status SataDevice::Read(uint64_t page, uint8_t* data) {
  SimNanos t0 = clock_->Now();
  stats_.read_commands++;
  Status s = LinkRead(ftl::kNoTx, page, data);
  Note(trace::Op::kRead, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::Write(uint64_t page, const uint8_t* data) {
  SimNanos t0 = clock_->Now();
  XFTL_RETURN_IF_ERROR(CheckLink());
  WaitForSlot();
  stats_.write_commands++;
  Status s = SubmitPayload(ftl::kNoTx, &page, &data, 1, nullptr);
  if (s.ok()) EnqueueCompletion(ftl::kNoTx, &page, &data, 1);
  Note(trace::Op::kWrite, t0, ftl::kNoTx, page, s.code(), inflight_.size());
  return s;
}

Status SataDevice::WriteBatch(const uint64_t* pages,
                              const uint8_t* const* datas, size_t n,
                              size_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  if (n == 0) return Status::OK();
  SimNanos t0 = clock_->Now();
  XFTL_RETURN_IF_ERROR(CheckLink());
  WaitForSlot();
  // One wire command moves the whole batch; the FTL stripes the programs
  // across banks, so the batch occupies one queue slot that drains when the
  // slowest program finishes. write_commands counts host pages written (one
  // per page even in a batch); batch_commands counts the wire-level
  // commands that moved them.
  stats_.write_commands += n;
  stats_.batch_commands++;
  stats_.batched_pages += n;
  size_t acc = 0;
  Status s = SubmitPayload(ftl::kNoTx, pages, datas, n, &acc);
  if (accepted != nullptr) *accepted = acc;
  if (acc > 0) EnqueueCompletion(ftl::kNoTx, pages, datas, acc);
  // Per-page capture events keep trace replay page-accurate (the replayer
  // re-drives each page as an individual write command). Pages the device
  // durably accepted report kOk even when the batch as a whole failed.
  for (size_t i = 0; i < n; ++i) {
    Note(trace::Op::kWrite, t0, ftl::kNoTx, pages[i],
         i < acc ? StatusCode::kOk : s.code(), inflight_.size());
  }
  return s;
}

Status SataDevice::Trim(uint64_t page) {
  SimNanos t0 = clock_->Now();
  XFTL_RETURN_IF_ERROR(CheckLink());
  ChargeCommand(false);
  stats_.trim_commands++;
  Status s = ftl_->Trim(page);
  Note(trace::Op::kTrim, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::FlushBarrier() {
  // kBarrier firmware serves FLUSH order-only: the fsync path is the whole
  // point of the barrier rework, and callers that truly need completion-wait
  // semantics use AwaitDurable().
  if (ftl_->commit_mode() == ftl::CommitMode::kBarrier) return Barrier();
  SimNanos t0 = clock_->Now();
  DrainQueue();
  ChargeCommand(false);
  stats_.barrier_commands++;
  // errseq semantics: a queued write lost in the background fails the next
  // barrier, so the host learns about it before trusting durability.
  Status s = TakeDeferredError();
  if (s.ok()) s = ftl_->Flush();
  Note(trace::Op::kFlush, t0, ftl::kNoTx, 0, s.code());
  return s;
}

Status SataDevice::Barrier() {
  if (ftl_->commit_mode() != ftl::CommitMode::kBarrier) return FlushBarrier();
  SimNanos t0 = clock_->Now();
  // No drain: polling retires what already finished and discovers faults,
  // but queued programs keep running behind the epoch fence.
  PollQueue();
  ChargeCommand(false);
  stats_.barrier_commands++;
  // A background loss latched in the closing epoch fails this barrier — the
  // first command of the next epoch, per the errseq contract.
  Status s = TakeDeferredError();
  if (s.ok()) s = ftl_->Barrier();
  barrier_epoch_++;
  Note(trace::Op::kBarrier, t0, ftl::kNoTx, barrier_epoch_, s.code());
  return s;
}

Status SataDevice::AwaitDurable() {
  SimNanos t0 = clock_->Now();
  DrainQueue();
  ChargeCommand(false);
  stats_.barrier_commands++;
  Status s = TakeDeferredError();
  if (s.ok()) s = ftl_->Flush();
  // `a` = 1 marks the completion-wait flavor in the trace stream.
  Note(trace::Op::kFlush, t0, ftl::kNoTx, 1, s.code());
  return s;
}

Status SataDevice::TxRead(TxId t, uint64_t page, uint8_t* data) {
  if (xftl_ == nullptr) return Read(page, data);
  SimNanos t0 = clock_->Now();
  stats_.read_commands++;
  Status s = LinkRead(t, page, data);
  Note(trace::Op::kTxRead, t0, t, page, s.code());
  return s;
}

Status SataDevice::TxWrite(TxId t, uint64_t page, const uint8_t* data) {
  if (xftl_ == nullptr) return Write(page, data);
  SimNanos t0 = clock_->Now();
  XFTL_RETURN_IF_ERROR(CheckLink());
  WaitForSlot();
  stats_.write_commands++;
  Status s = SubmitPayload(t, &page, &data, 1, nullptr);
  if (s.ok()) {
    open_txns_.insert(t);
    EnqueueCompletion(t, &page, &data, 1);
  }
  Note(trace::Op::kTxWrite, t0, t, page, s.code(), inflight_.size());
  return s;
}

Status SataDevice::TxWriteBatch(TxId t, const uint64_t* pages,
                                const uint8_t* const* datas, size_t n,
                                size_t* accepted) {
  if (xftl_ == nullptr) return WriteBatch(pages, datas, n, accepted);
  if (accepted != nullptr) *accepted = 0;
  if (n == 0) return Status::OK();
  SimNanos t0 = clock_->Now();
  XFTL_RETURN_IF_ERROR(CheckLink());
  WaitForSlot();
  stats_.write_commands += n;
  stats_.batch_commands++;
  stats_.batched_pages += n;
  size_t acc = 0;
  Status s = SubmitPayload(t, pages, datas, n, &acc);
  if (accepted != nullptr) *accepted = acc;
  if (acc > 0) {
    open_txns_.insert(t);
    EnqueueCompletion(t, pages, datas, acc);
  }
  for (size_t i = 0; i < n; ++i) {
    Note(trace::Op::kTxWrite, t0, t, pages[i],
         i < acc ? StatusCode::kOk : s.code(), inflight_.size());
  }
  return s;
}

Status SataDevice::TxCommit(TxId t) {
  if (xftl_ == nullptr) return FlushBarrier();
  // One extended trim command carries the commit verb. The commit's data
  // barrier must cover every acknowledged write; OrderCommit applies the
  // firmware's discipline (drain, or poll for barrier/PLP modes where the
  // verb is ordered behind queued writes inside the controller). A deferred
  // background loss fails the commit without executing it.
  SimNanos t0 = clock_->Now();
  OrderCommit();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_commands++;
  Status s = TakeDeferredError();
  if (s.ok()) {
    s = xftl_->TxCommit(t);
    if (s.ok()) open_txns_.erase(t);
  }
  Note(trace::Op::kTxCommit, t0, t, 0, s.code());
  return s;
}

Status SataDevice::TxPrepare(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("prepare on a non-transactional device");
  }
  // Same barrier discipline as TxCommit: PREPARE promises both versions are
  // retained, so every acknowledged queued write must be ordered before it.
  SimNanos t0 = clock_->Now();
  OrderCommit();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.prepare_commands++;
  Status s = TakeDeferredError();
  if (s.ok()) s = xftl_->TxPrepare(t);
  Note(trace::Op::kTxPrepare, t0, t, 0, s.code());
  return s;
}

Status SataDevice::WriteCommitRecord(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("commit record on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_record_commands++;
  Status s = xftl_->WriteCommitRecord(t);
  // `a` mirrors the XFtl-layer convention: 1 = record write, 0 = release.
  Note(trace::Op::kCommitRecord, t0, t, 1, s.code());
  return s;
}

Status SataDevice::ReleaseCommitRecord(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("commit record on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_record_commands++;
  Status s = xftl_->ReleaseCommitRecord(t);
  Note(trace::Op::kCommitRecord, t0, t, 0, s.code());
  return s;
}

bool SataDevice::HasCommitRecord(TxId t) const {
  return xftl_ != nullptr && xftl_->HasCommitRecord(t);
}

std::vector<TxId> SataDevice::CommitRecords() const {
  if (xftl_ == nullptr) return {};
  return xftl_->CommitRecords();
}

std::vector<TxId> SataDevice::InDoubtTransactions() const {
  if (xftl_ == nullptr) return {};
  return xftl_->InDoubtTransactions();
}

Status SataDevice::ResolveInDoubt(TxId t, bool commit) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("resolve on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.resolve_commands++;
  Status s = xftl_->ResolveInDoubt(t, commit);
  Note(trace::Op::kResolve, t0, t, commit ? 1 : 0, s.code());
  return s;
}

StatusOr<uint64_t> SataDevice::SnapPin() {
  if (xftl_ == nullptr) {
    return Status::NotSupported("snapshot pin on a non-transactional device");
  }
  // The pin must not see a commit that is still in the queue ahead of it;
  // the same ordering discipline as a commit verb keeps the epoch exact.
  SimNanos t0 = clock_->Now();
  OrderCommit();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.snap_pin_commands++;
  uint64_t epoch = xftl_->PinSnapshot();
  Note(trace::Op::kSnapPin, t0, ftl::kNoTx, 0, StatusCode::kOk, epoch);
  return epoch;
}

Status SataDevice::SnapUnpin(uint64_t epoch) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("snapshot unpin on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.snap_unpin_commands++;
  xftl_->UnpinSnapshot(epoch);
  Note(trace::Op::kSnapUnpin, t0, ftl::kNoTx, 0, StatusCode::kOk, epoch);
  return Status::OK();
}

Status SataDevice::SnapRead(uint64_t epoch, uint64_t page, uint8_t* data) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("snapshot read on a non-transactional device");
  }
  // Synchronous like every read, with the same CRC retransfer policy as
  // LinkRead; the epoch rides in the command's parameter set.
  SimNanos t0 = clock_->Now();
  stats_.read_commands++;
  stats_.snap_read_commands++;
  Status s;
  for (uint32_t attempt = 0;; ++attempt) {
    ChargeCommand(true);
    s = xftl_->SnapshotRead(epoch, page, data);
    if (!s.ok()) break;              // device-side error, not a link problem
    if (!TransferFaults()) break;    // data crossed intact
    stats_.crc_errors++;
    SimNanos f0 = clock_->Now();
    if (attempt >= policy_.max_retries) {
      Note(trace::Op::kLinkFault, f0, ftl::kNoTx, page, StatusCode::kIoError,
           kCrc);
      s = Status::IoError("SATA link: read CRC retries exhausted");
      break;
    }
    SimNanos backoff = policy_.backoff_base << attempt;
    clock_->Advance(backoff);
    stats_.backoff_nanos += backoff;
    stats_.link_retries++;
    Note(trace::Op::kLinkFault, f0, ftl::kNoTx, page, StatusCode::kOk, kCrc);
  }
  Note(trace::Op::kSnapRead, t0, ftl::kNoTx, page, s.code(), epoch);
  return s;
}

void SataDevice::OrderCommit() {
  switch (ftl_->commit_mode()) {
    case ftl::CommitMode::kDrain:
      // Classic completion-wait: the commit verb may not pass the device
      // until every acknowledged queued write reached the cells.
      DrainQueue();
      break;
    case ftl::CommitMode::kBarrier:
    case ftl::CommitMode::kPlp:
      // The verb is ordered behind queued writes inside the controller
      // (epoch fence, or the capacitor-backed buffer). Polling retires what
      // already finished and surfaces discoverable link faults so a failed
      // queue never hides behind a fast commit.
      PollQueue();
      break;
  }
}

Status SataDevice::TxAbort(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("abort on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.abort_commands++;
  Status s = xftl_->TxAbort(t);
  if (s.ok()) open_txns_.erase(t);
  Note(trace::Op::kTxAbort, t0, t, 0, s.code());
  return s;
}

void SataDevice::ResetVolatile() {
  stats_.dropped_on_power_cut += inflight_.size();
  for (const auto& [tag, cmd] : inflight_) {
    stats_.dropped_pages_on_power_cut += cmd.pages.size();
  }
  inflight_.clear();
  last_write_tag_.clear();
  open_txns_.clear();
  // A reboot re-trains the link: the degradation ladder and the deferred
  // error latch are volatile host state. What the latch was protecting is
  // moot after a power cut - recovery discards the unacknowledged suffix
  // anyway, and the fsck pass re-derives durable state from flash.
  in_recovery_ = false;
  degraded_ = false;
  link_failed_ = false;
  consecutive_resets_ = 0;
  clean_streak_ = 0;
  deferred_error_ = Status::OK();
  // Barrier-epoch tagging restarts with the link: ordering across the cut
  // is moot (recovery re-derives durable state from the cells).
  barrier_epoch_ = 0;
}

}  // namespace xftl::storage
