#include "storage/sata_device.h"

#include <algorithm>

namespace xftl::storage {

SataDevice::SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
                       SimClock* clock)
    : ftl_(ftl),
      xftl_(dynamic_cast<ftl::XFtl*>(ftl)),
      timings_(timings),
      clock_(clock) {
  CHECK(ftl_ != nullptr);
  CHECK(timings_.ncq_depth >= 1);
}

void SataDevice::ChargeCommand(bool with_transfer) {
  SimNanos cost = timings_.command_overhead;
  if (with_transfer) cost += timings_.transfer_per_page;
  clock_->Advance(cost);
}

void SataDevice::Note(trace::Op op, SimNanos t0, TxId t, uint64_t page,
                      StatusCode code, uint64_t occupancy) {
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kSata, op, t0, static_cast<uint32_t>(t),
                    page, occupancy, clock_->Now() - t0, code);
  }
}

void SataDevice::RetireCompleted() {
  SimNanos now = clock_->Now();
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    it = (it->second <= now) ? inflight_.erase(it) : std::next(it);
  }
}

void SataDevice::WaitForSlot() {
  RetireCompleted();
  if (inflight_.size() < timings_.ncq_depth) return;
  // Queue full: wait for the EARLIEST completion among the queued commands,
  // whatever its submission order - this is what makes completion
  // out-of-order.
  stats_.queue_full_stalls++;
  SimNanos earliest = inflight_.begin()->second;
  for (const auto& [tag, done] : inflight_) earliest = std::min(earliest, done);
  clock_->AdvanceTo(earliest);
  RetireCompleted();
}

void SataDevice::EnqueueCompletion() {
  stats_.queued_commands++;
  inflight_[next_tag_++] = ftl_->LastCompletionTime();
}

void SataDevice::DrainQueue() {
  for (const auto& [tag, done] : inflight_) clock_->AdvanceTo(done);
  inflight_.clear();
}

size_t SataDevice::InflightCommands() {
  RetireCompleted();
  return inflight_.size();
}

Status SataDevice::Read(uint64_t page, uint8_t* data) {
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.read_commands++;
  Status s = ftl_->Read(page, data);
  Note(trace::Op::kRead, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::Write(uint64_t page, const uint8_t* data) {
  SimNanos t0 = clock_->Now();
  WaitForSlot();
  ChargeCommand(true);
  stats_.write_commands++;
  Status s = ftl_->Write(page, data);
  if (s.ok()) EnqueueCompletion();
  Note(trace::Op::kWrite, t0, ftl::kNoTx, page, s.code(), inflight_.size());
  return s;
}

Status SataDevice::WriteBatch(const uint64_t* pages,
                              const uint8_t* const* datas, size_t n) {
  if (n == 0) return Status::OK();
  SimNanos t0 = clock_->Now();
  WaitForSlot();
  // One wire command moves the whole batch: a single command overhead, then
  // every page's link transfer back to back. The FTL stripes the programs
  // across banks before the clock moves again, so the batch occupies one
  // queue slot that drains when the slowest program finishes.
  clock_->Advance(timings_.command_overhead +
                  timings_.transfer_per_page * static_cast<SimNanos>(n));
  // write_commands counts host pages written (one per page even in a
  // batch); batch_commands counts the wire-level commands that moved them.
  stats_.write_commands += n;
  stats_.batch_commands++;
  stats_.batched_pages += n;
  Status s = ftl_->WriteBatch(pages, datas, n);
  if (s.ok()) EnqueueCompletion();
  // Per-page capture events keep trace replay page-accurate (the replayer
  // re-drives each page as an individual write command).
  for (size_t i = 0; i < n; ++i) {
    Note(trace::Op::kWrite, t0, ftl::kNoTx, pages[i], s.code(),
         inflight_.size());
  }
  return s;
}

Status SataDevice::Trim(uint64_t page) {
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  Status s = ftl_->Trim(page);
  Note(trace::Op::kTrim, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::FlushBarrier() {
  SimNanos t0 = clock_->Now();
  DrainQueue();
  ChargeCommand(false);
  stats_.barrier_commands++;
  Status s = ftl_->Flush();
  Note(trace::Op::kFlush, t0, ftl::kNoTx, 0, s.code());
  return s;
}

Status SataDevice::TxRead(TxId t, uint64_t page, uint8_t* data) {
  if (xftl_ == nullptr) return Read(page, data);
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.read_commands++;
  Status s = xftl_->TxRead(t, page, data);
  Note(trace::Op::kTxRead, t0, t, page, s.code());
  return s;
}

Status SataDevice::TxWrite(TxId t, uint64_t page, const uint8_t* data) {
  if (xftl_ == nullptr) return Write(page, data);
  SimNanos t0 = clock_->Now();
  WaitForSlot();
  ChargeCommand(true);
  stats_.write_commands++;
  Status s = xftl_->TxWrite(t, page, data);
  if (s.ok()) {
    open_txns_.insert(t);
    EnqueueCompletion();
  }
  Note(trace::Op::kTxWrite, t0, t, page, s.code(), inflight_.size());
  return s;
}

Status SataDevice::TxWriteBatch(TxId t, const uint64_t* pages,
                                const uint8_t* const* datas, size_t n) {
  if (xftl_ == nullptr) return WriteBatch(pages, datas, n);
  if (n == 0) return Status::OK();
  SimNanos t0 = clock_->Now();
  WaitForSlot();
  clock_->Advance(timings_.command_overhead +
                  timings_.transfer_per_page * static_cast<SimNanos>(n));
  stats_.write_commands += n;
  stats_.batch_commands++;
  stats_.batched_pages += n;
  Status s = xftl_->TxWriteBatch(t, pages, datas, n);
  if (s.ok()) {
    open_txns_.insert(t);
    EnqueueCompletion();
  }
  for (size_t i = 0; i < n; ++i) {
    Note(trace::Op::kTxWrite, t0, t, pages[i], s.code(), inflight_.size());
  }
  return s;
}

Status SataDevice::TxCommit(TxId t) {
  if (xftl_ == nullptr) return FlushBarrier();
  // One extended trim command carries the commit verb. The commit's data
  // barrier must cover every acknowledged write, so the queue drains first.
  SimNanos t0 = clock_->Now();
  DrainQueue();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_commands++;
  Status s = xftl_->TxCommit(t);
  if (s.ok()) open_txns_.erase(t);
  Note(trace::Op::kTxCommit, t0, t, 0, s.code());
  return s;
}

Status SataDevice::TxAbort(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("abort on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.abort_commands++;
  Status s = xftl_->TxAbort(t);
  if (s.ok()) open_txns_.erase(t);
  Note(trace::Op::kTxAbort, t0, t, 0, s.code());
  return s;
}

}  // namespace xftl::storage
