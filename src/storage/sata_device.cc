#include "storage/sata_device.h"

namespace xftl::storage {

SataDevice::SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
                       SimClock* clock)
    : ftl_(ftl),
      xftl_(dynamic_cast<ftl::XFtl*>(ftl)),
      timings_(timings),
      clock_(clock) {
  CHECK(ftl_ != nullptr);
}

void SataDevice::ChargeCommand(bool with_transfer) {
  SimNanos cost = timings_.command_overhead;
  if (with_transfer) cost += timings_.transfer_per_page;
  clock_->Advance(cost);
}

void SataDevice::Note(trace::Op op, SimNanos t0, TxId t, uint64_t page,
                      StatusCode code) {
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kSata, op, t0, static_cast<uint32_t>(t),
                    page, 0, clock_->Now() - t0, code);
  }
}

Status SataDevice::Read(uint64_t page, uint8_t* data) {
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.read_commands++;
  Status s = ftl_->Read(page, data);
  Note(trace::Op::kRead, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::Write(uint64_t page, const uint8_t* data) {
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.write_commands++;
  Status s = ftl_->Write(page, data);
  Note(trace::Op::kWrite, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::Trim(uint64_t page) {
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  Status s = ftl_->Trim(page);
  Note(trace::Op::kTrim, t0, ftl::kNoTx, page, s.code());
  return s;
}

Status SataDevice::FlushBarrier() {
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.barrier_commands++;
  Status s = ftl_->Flush();
  Note(trace::Op::kFlush, t0, ftl::kNoTx, 0, s.code());
  return s;
}

Status SataDevice::TxRead(TxId t, uint64_t page, uint8_t* data) {
  if (xftl_ == nullptr) return Read(page, data);
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.read_commands++;
  Status s = xftl_->TxRead(t, page, data);
  Note(trace::Op::kTxRead, t0, t, page, s.code());
  return s;
}

Status SataDevice::TxWrite(TxId t, uint64_t page, const uint8_t* data) {
  if (xftl_ == nullptr) return Write(page, data);
  SimNanos t0 = clock_->Now();
  ChargeCommand(true);
  stats_.write_commands++;
  Status s = xftl_->TxWrite(t, page, data);
  if (s.ok()) open_txns_.insert(t);
  Note(trace::Op::kTxWrite, t0, t, page, s.code());
  return s;
}

Status SataDevice::TxCommit(TxId t) {
  if (xftl_ == nullptr) return FlushBarrier();
  // One extended trim command carries the commit verb.
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_commands++;
  Status s = xftl_->TxCommit(t);
  if (s.ok()) open_txns_.erase(t);
  Note(trace::Op::kTxCommit, t0, t, 0, s.code());
  return s;
}

Status SataDevice::TxAbort(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("abort on a non-transactional device");
  }
  SimNanos t0 = clock_->Now();
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.abort_commands++;
  Status s = xftl_->TxAbort(t);
  if (s.ok()) open_txns_.erase(t);
  Note(trace::Op::kTxAbort, t0, t, 0, s.code());
  return s;
}

}  // namespace xftl::storage
