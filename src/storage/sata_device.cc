#include "storage/sata_device.h"

namespace xftl::storage {

SataDevice::SataDevice(ftl::FtlInterface* ftl, const SataTimings& timings,
                       SimClock* clock)
    : ftl_(ftl),
      xftl_(dynamic_cast<ftl::XFtl*>(ftl)),
      timings_(timings),
      clock_(clock) {
  CHECK(ftl_ != nullptr);
}

void SataDevice::ChargeCommand(bool with_transfer) {
  SimNanos cost = timings_.command_overhead;
  if (with_transfer) cost += timings_.transfer_per_page;
  clock_->Advance(cost);
}

Status SataDevice::Read(uint64_t page, uint8_t* data) {
  ChargeCommand(true);
  stats_.read_commands++;
  return ftl_->Read(page, data);
}

Status SataDevice::Write(uint64_t page, const uint8_t* data) {
  ChargeCommand(true);
  stats_.write_commands++;
  return ftl_->Write(page, data);
}

Status SataDevice::Trim(uint64_t page) {
  ChargeCommand(false);
  stats_.trim_commands++;
  return ftl_->Trim(page);
}

Status SataDevice::FlushBarrier() {
  ChargeCommand(false);
  stats_.barrier_commands++;
  return ftl_->Flush();
}

Status SataDevice::TxRead(TxId t, uint64_t page, uint8_t* data) {
  if (xftl_ == nullptr) return Read(page, data);
  ChargeCommand(true);
  stats_.read_commands++;
  return xftl_->TxRead(t, page, data);
}

Status SataDevice::TxWrite(TxId t, uint64_t page, const uint8_t* data) {
  if (xftl_ == nullptr) return Write(page, data);
  ChargeCommand(true);
  stats_.write_commands++;
  return xftl_->TxWrite(t, page, data);
}

Status SataDevice::TxCommit(TxId t) {
  if (xftl_ == nullptr) return FlushBarrier();
  // One extended trim command carries the commit verb.
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.commit_commands++;
  return xftl_->TxCommit(t);
}

Status SataDevice::TxAbort(TxId t) {
  if (xftl_ == nullptr) {
    return Status::NotSupported("abort on a non-transactional device");
  }
  ChargeCommand(false);
  stats_.trim_commands++;
  stats_.abort_commands++;
  return xftl_->TxAbort(t);
}

}  // namespace xftl::storage
