// SimSsd bundles a simulated drive: NAND array + (X-)FTL + SATA front-end,
// built from a device profile. Profiles model the two drives in the paper's
// evaluation: the OpenSSD development board (Indilinx Barefoot, SATA 2.0)
// and the Samsung S830 (a one-generation-newer consumer SSD on SATA 6G).
#ifndef XFTL_STORAGE_SIM_SSD_H_
#define XFTL_STORAGE_SIM_SSD_H_

#include <memory>

#include "common/sim_clock.h"
#include "flash/flash_device.h"
#include "storage/sata_device.h"
#include "xftl/xftl.h"

namespace xftl::storage {

struct SsdSpec {
  flash::FlashConfig flash;
  ftl::FtlConfig ftl;
  ftl::XftlConfig xftl;
  SataTimings sata;
  // Transient host<->device link faults and the host recovery policy that
  // fights them; default is a perfect link. Composes with flash.fault.
  LinkFaultModel link_fault;
  LinkRecoveryPolicy link_policy;
  // Build an X-FTL (extended command set) or the original page-mapping FTL.
  bool transactional = true;
  // Run the offline invariant checker (xftl_fsck) against the recovered
  // state after every PowerCycle(). Cheap at simulated scale; tests leave it
  // on so every crash point in the suite is also an fsck test case.
  bool fsck_on_power_cycle = true;
};

// OpenSSD profile (paper §6.1): Samsung K9LCG08U1M MLC, 8 KB pages, 128
// pages/block, Barefoot controller with 4-way interleaving, SATA 2.0.
// `num_blocks` sizes the array; `utilization` is the fraction of the data
// space exposed as logical pages (the GC-validity aging knob).
SsdSpec OpenSsdSpec(uint32_t num_blocks = 512, double utilization = 0.65);

// Samsung S830 profile: same MLC generation but a faster controller —
// more interleaving, deeper write buffer, SATA 6G link.
SsdSpec S830Spec(uint32_t num_blocks = 512, double utilization = 0.65);

class SimSsd {
 public:
  SimSsd(const SsdSpec& spec, SimClock* clock);

  SimSsd(const SimSsd&) = delete;
  SimSsd& operator=(const SimSsd&) = delete;

  SataDevice* device() { return sata_.get(); }
  ftl::FtlInterface* ftl() { return ftl_.get(); }
  // Null when the spec was not transactional.
  ftl::XFtl* xftl() { return xftl_; }
  flash::FlashDevice* flash() { return flash_.get(); }
  SimClock* clock() { return clock_; }

  // Simulated power cycle: the plug is pulled (undrained buffered programs
  // are lost, SATA front-end state evaporates), then the drive reboots and
  // rebuilds its volatile state from flash. When the spec asks for it, the
  // recovered state is cross-checked by the offline invariant checker.
  Status PowerCycle();

  // The two halves of PowerCycle, exposed separately for array controllers
  // (host::StripedVolume): CutPower never advances the shared clock, so a
  // controller can fail any subset of members — one fault domain or the
  // whole rail — at a single simulated instant, and only then run the
  // (clock-advancing) recoveries.
  void CutPower();
  Status Reboot();

  // Wires `tracer` into every in-drive layer (SATA front-end and raw
  // flash; the FTL/X-FTL layers reach it through the flash device).
  void SetTracer(trace::Tracer* tracer) {
    sata_->set_tracer(tracer);
    flash_->set_tracer(tracer);
  }

 private:
  const SsdSpec spec_;
  SimClock* const clock_;
  std::unique_ptr<flash::FlashDevice> flash_;
  std::unique_ptr<ftl::FtlInterface> ftl_;
  ftl::XFtl* xftl_ = nullptr;
  std::unique_ptr<SataDevice> sata_;
};

}  // namespace xftl::storage

#endif  // XFTL_STORAGE_SIM_SSD_H_
