// StripedVolume: an array controller that presents N SimSsd members as one
// TxBlockDevice, striping the logical page space RAID-0 style.
//
// Geometry: the logical space is divided into stripe units of `stripe_pages`
// consecutive pages; unit k lives on device k % N at per-device unit k / N.
// With N = 1 this degenerates to an offset-free identity (modulo rounding
// the member's capacity down to whole stripe units), and the mapping is a
// bijection at every stripe size — tests/host_test.cc round-trips it.
//
// Transactions: a TxId's writes may touch several members. The volume tracks
// the participant set per open transaction and fans TxCommit/TxAbort out to
// exactly those members, in ascending device order. There is no cross-device
// two-phase commit — a power cut landing inside the fan-out can leave the
// transaction committed on a prefix of its participants. This window is a
// documented deviation (DESIGN.md §9); the paper's device is single-volume,
// and each session in this host writes its own database, whose pages a
// fixed stripe map keeps on deterministic members.
//
// Power: PowerCycle() cuts power on EVERY member first and only then reboots
// them, so the cut hits the whole array at the same simulated instant — one
// power rail, not N staggered failures (member recovery advances the shared
// clock, so a per-member PowerCycle loop would cut member k+1 after member k
// already finished rebooting).
#ifndef XFTL_HOST_VOLUME_H_
#define XFTL_HOST_VOLUME_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/sim_clock.h"
#include "storage/block_device.h"
#include "storage/sim_ssd.h"
#include "trace/tracer.h"

namespace xftl::host {

struct VolumeConfig {
  uint32_t num_devices = 1;
  // Pages per stripe unit. Small units spread one database across members
  // (bank-style parallelism); large units approximate per-file placement.
  uint32_t stripe_pages = 64;
  // Per-member device profile; every member is built from the same spec.
  storage::SsdSpec spec;
};

class StripedVolume : public storage::TxBlockDevice {
 public:
  // All members share `clock`; there is exactly one timeline, so members
  // cannot drift (see SimClock's ownership notes).
  StripedVolume(const VolumeConfig& config, SimClock* clock);
  ~StripedVolume() override;

  StripedVolume(const StripedVolume&) = delete;
  StripedVolume& operator=(const StripedVolume&) = delete;

  // --- geometry ------------------------------------------------------------
  struct Location {
    uint32_t device = 0;
    uint64_t lpn = 0;  // member-local logical page
  };
  Location Map(uint64_t lpn) const;
  // Inverse of Map (bijection round-trip; tests exercise it).
  uint64_t Unmap(uint32_t device, uint64_t dev_lpn) const;

  uint32_t num_devices() const { return uint32_t(members_.size()); }
  uint32_t stripe_pages() const { return config_.stripe_pages; }
  uint64_t pages_per_device() const { return per_device_pages_; }
  storage::SimSsd* member(uint32_t i) { return members_[i].get(); }
  const storage::SimSsd* member(uint32_t i) const { return members_[i].get(); }
  SimClock* clock() { return clock_; }

  // --- BlockDevice ---------------------------------------------------------
  uint32_t page_size() const override;
  uint64_t num_pages() const override { return num_pages_; }
  Status Read(uint64_t page, uint8_t* data) override;
  Status Write(uint64_t page, const uint8_t* data) override;
  Status WriteBatch(const uint64_t* pages, const uint8_t* const* datas,
                    size_t n, size_t* accepted = nullptr) override;
  Status Trim(uint64_t page) override;
  // Durability barrier across the whole array: fanned to every member.
  Status FlushBarrier() override;

  // --- TxBlockDevice -------------------------------------------------------
  bool SupportsTransactions() const override;
  Status TxRead(storage::TxId t, uint64_t page, uint8_t* data) override;
  Status TxWrite(storage::TxId t, uint64_t page, const uint8_t* data) override;
  Status TxWriteBatch(storage::TxId t, const uint64_t* pages,
                      const uint8_t* const* datas, size_t n,
                      size_t* accepted = nullptr) override;
  Status TxCommit(storage::TxId t) override;
  Status TxAbort(storage::TxId t) override;

  // Members a transaction has written (and not yet committed/aborted) on.
  // Empty set = unknown/idle transaction.
  std::set<uint32_t> Participants(storage::TxId t) const;

  // Same-instant array power cycle: cut everything, then reboot everything.
  // Open-transaction participant tracking is volatile and resets with the
  // members' front-ends.
  Status PowerCycle();

  // Fans the tracer into every member's in-drive layers.
  void SetTracer(trace::Tracer* tracer);

 private:
  // Distributes `n` (page, data) pairs into per-member batches, preserving
  // input order within each member, issues them in ascending device order,
  // and reports `accepted` as the longest *prefix* of the input whose pages
  // were all durably accepted (the contract callers reissue against).
  Status FanOutBatch(storage::TxId t, const uint64_t* pages,
                     const uint8_t* const* datas, size_t n, size_t* accepted);

  const VolumeConfig config_;
  SimClock* const clock_;
  std::vector<std::unique_ptr<storage::SimSsd>> members_;
  uint64_t per_device_pages_ = 0;  // whole stripe units only
  uint64_t num_pages_ = 0;
  // TxId -> members with uncommitted writes; std::map for deterministic
  // fan-out order independent of allocation behavior.
  std::map<storage::TxId, std::set<uint32_t>> participants_;
};

}  // namespace xftl::host

#endif  // XFTL_HOST_VOLUME_H_
