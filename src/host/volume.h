// StripedVolume: an array controller that presents N SimSsd members as one
// TxBlockDevice, striping the logical page space RAID-0 style.
//
// Geometry: the logical space is divided into stripe units of `stripe_pages`
// consecutive pages; unit k lives on device k % N at per-device unit k / N.
// With N = 1 this degenerates to an offset-free identity (modulo rounding
// the member's capacity down to whole stripe units), and the mapping is a
// bijection at every stripe size — tests/host_test.cc round-trips it.
//
// Transactions: a TxId's writes may touch several members. The volume tracks
// the participant set per open transaction. A single-participant commit is
// already atomic inside that member's X-FTL; a multi-participant commit runs
// a two-phase protocol over the extended command set:
//
//   1. PREPARE every participant (ascending device order). Each member
//      durably retains BOTH versions of the transaction's pages; any
//      failure aborts the transaction on every online participant.
//   2. Write the commit record for the TxId on the coordinator (member 0).
//      The record is the commit point: a failure before it is durable
//      resolves to abort everywhere, a failure after resolves to commit.
//   3. COMMIT fan-out to every participant, continuing past per-member
//      errors. Only when every participant acknowledged is the record
//      released; otherwise it is retained so reboot recovery can REDO the
//      member that missed phase 2.
//
// After any reboot (member or array), recovery asks each member for its
// in-doubt (PREPARED) transactions and resolves each one by consulting the
// coordinator's records: REDO forward if the record is durable, abort to
// the pre-image otherwise — exactly once per member, idempotent on replay.
// Members that rolled forward are flushed before the settled record is
// released, so a second crash can never see a released record with a
// non-durable resolution. VolumeConfig::two_phase_commit = false restores
// the unsafe serial fan-out (the baseline bench/ablation_array_faults
// measures prepare overhead against).
//
// Power and fault domains: each member is its own fault domain.
// CutPowerMember(i) / RebootMember(i) / PowerCycleMember(i) fail and
// recover exactly one member; all members share one SimClock, and CutPower
// never advances it, so cutting any subset of members happens at a single
// simulated instant regardless of loop order — only Reboot (recovery) moves
// time. PowerCycle() (the whole-array rail failure) is the degenerate case:
// cut every member, then reboot every member.
//
// Degraded arrays: while a member is powered off (or its link has failed),
// reads on surviving stripes succeed, reads on dead stripes fail fast with
// an I/O error, and writes/trims touching the dead member fail fast AND
// latch an errseq-style deferred error that the next FlushBarrier/TxCommit
// reports once — mirroring the per-device SATA latch one level up.
// RebootMember() re-integrates the member and resolves its in-doubt state.
#ifndef XFTL_HOST_VOLUME_H_
#define XFTL_HOST_VOLUME_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/sim_clock.h"
#include "storage/block_device.h"
#include "storage/sim_ssd.h"
#include "trace/tracer.h"

namespace xftl::host {

struct VolumeConfig {
  uint32_t num_devices = 1;
  // Pages per stripe unit. Small units spread one database across members
  // (bank-style parallelism); large units approximate per-file placement.
  uint32_t stripe_pages = 64;
  // Per-member device profile; every member is built from the same spec…
  storage::SsdSpec spec;
  // …unless this is non-empty, in which case it must hold num_devices
  // entries and member i is built from member_specs[i] — per-member NAND
  // and link fault models (one flaky member in an otherwise clean array).
  std::vector<storage::SsdSpec> member_specs;
  // Cross-device two-phase commit for multi-participant transactions.
  // false = unsafe serial fan-out, kept as the ablation baseline.
  bool two_phase_commit = true;
};

class StripedVolume : public storage::TxBlockDevice {
 public:
  // All members share `clock`; there is exactly one timeline, so members
  // cannot drift (see SimClock's ownership notes).
  StripedVolume(const VolumeConfig& config, SimClock* clock);
  ~StripedVolume() override;

  StripedVolume(const StripedVolume&) = delete;
  StripedVolume& operator=(const StripedVolume&) = delete;

  // --- geometry ------------------------------------------------------------
  struct Location {
    uint32_t device = 0;
    uint64_t lpn = 0;  // member-local logical page
  };
  Location Map(uint64_t lpn) const;
  // Inverse of Map (bijection round-trip; tests exercise it).
  uint64_t Unmap(uint32_t device, uint64_t dev_lpn) const;

  uint32_t num_devices() const { return uint32_t(members_.size()); }
  uint32_t stripe_pages() const { return config_.stripe_pages; }
  uint64_t pages_per_device() const { return per_device_pages_; }
  storage::SimSsd* member(uint32_t i) { return members_[i].get(); }
  const storage::SimSsd* member(uint32_t i) const { return members_[i].get(); }
  SimClock* clock() { return clock_; }

  // --- BlockDevice ---------------------------------------------------------
  uint32_t page_size() const override;
  uint64_t num_pages() const override { return num_pages_; }
  Status Read(uint64_t page, uint8_t* data) override;
  Status Write(uint64_t page, const uint8_t* data) override;
  Status WriteBatch(const uint64_t* pages, const uint8_t* const* datas,
                    size_t n, size_t* accepted = nullptr) override;
  Status Trim(uint64_t page) override;
  // Durability barrier across the online members; reports (and clears) the
  // volume's deferred error from writes that hit an offline member.
  Status FlushBarrier() override;
  // Order-preserving barrier fan-out. A single member opens a new epoch
  // without draining; with several members, barrier-firmware epochs cannot
  // order writes ACROSS members, so the volume falls back to
  // completion-wait (AwaitDurable per member) to keep the cross-member
  // orderings the barrier-commit paths depend on. Same deferred-error
  // reporting as FlushBarrier.
  Status Barrier() override;

  // --- TxBlockDevice -------------------------------------------------------
  bool SupportsTransactions() const override;
  Status TxRead(storage::TxId t, uint64_t page, uint8_t* data) override;
  Status TxWrite(storage::TxId t, uint64_t page, const uint8_t* data) override;
  Status TxWriteBatch(storage::TxId t, const uint64_t* pages,
                      const uint8_t* const* datas, size_t n,
                      size_t* accepted = nullptr) override;
  // Two-phase across multi-member participant sets (see header comment);
  // plain member-local commit for a single participant.
  Status TxCommit(storage::TxId t) override;
  Status TxAbort(storage::TxId t) override;

  // Members a transaction has written (and not yet committed/aborted) on.
  // Empty set = unknown/idle transaction.
  std::set<uint32_t> Participants(storage::TxId t) const;

  // --- MVCC snapshot reads -------------------------------------------------
  // A volume-level pin is one pin on every member taken back to back on the
  // shared timeline; the returned token maps to the per-member epochs. Pins
  // are volatile per member: a member power cut discards its side of every
  // pin, so SnapRead on that member's stripes fails until the reader
  // re-pins (SnapUnpin of the half-dead token stays a clean no-op there).
  bool SupportsSnapshots() const override;
  StatusOr<uint64_t> SnapPin() override;
  Status SnapUnpin(uint64_t token) override;
  Status SnapRead(uint64_t token, uint64_t page, uint8_t* data) override;

  // --- power and fault domains ---------------------------------------------
  // Same-instant array power cycle: cut every member, then reboot every
  // member (ascending, so the coordinator's records are back first), then
  // resolve in-doubt transactions array-wide. Open-transaction participant
  // tracking is volatile and resets with the members' front-ends.
  Status PowerCycle();
  // Per-member fault domain. CutPowerMember pulls one member's plug (no
  // clock advance — the cut is instantaneous on the shared timeline);
  // RebootMember recovers it, aborts survivors' halves of transactions the
  // dead member doomed, resolves in-doubt state against the coordinator's
  // commit records, and releases records that settled.
  void CutPowerMember(uint32_t i);
  Status RebootMember(uint32_t i);
  Status PowerCycleMember(uint32_t i);
  bool MemberOnline(uint32_t i) const { return powered_[i]; }
  // True while any member is offline (reads on its stripes fail fast).
  bool Degraded() const;

  // Pending errseq-style error latched by a write/trim that touched an
  // offline member; the next FlushBarrier/TxCommit reports and clears it.
  bool has_deferred_error() const { return !deferred_error_.ok(); }

  // --- crash-scripting hooks (tests) ---------------------------------------
  // One-shot: during the next multi-participant TxCommit, cut power on
  // `member` after every participant prepared but before the commit record
  // is written — the canonical "member dies between PREPARE and COMMIT".
  void ScriptCutAfterPrepare(uint32_t member) { cut_after_prepare_ = member; }
  // One-shot: arm the coordinator's flash so the very next program — the
  // first page of the commit record's X-L2P snapshot — tears mid-write.
  // The record never becomes durable and recovery must abort everywhere.
  void ScriptTearCommitRecord() { tear_commit_record_ = true; }

  // Dumps every member's flash to "<prefix>.<k>.img" with the array
  // placement recorded (image format v2), so `xftl_fsck --image=... ×N`
  // can cross-check the set offline (check::CheckArray). The members keep
  // running; the dump is the powered-off view of this instant.
  Status SaveMemberImages(const std::string& prefix);

  // Fans the tracer into every member's in-drive layers and keeps it for
  // volume-level kMemberFault events.
  void SetTracer(trace::Tracer* tracer);

 private:
  // Distributes `n` (page, data) pairs into per-member batches, preserving
  // input order within each member, issues them in ascending device order,
  // and reports `accepted` as the longest *prefix* of the input whose pages
  // were all durably accepted (the contract callers reissue against).
  Status FanOutBatch(storage::TxId t, const uint64_t* pages,
                     const uint8_t* const* datas, size_t n, size_t* accepted);
  // IoError for an offline member, OK otherwise.
  Status CheckMember(uint32_t dev) const;
  // Aborts `t` on every ONLINE member of `parts` (offline members resolve
  // at reboot); returns the first abort failure, for logging only.
  void AbortOn(const std::set<uint32_t>& parts, storage::TxId t);
  // Post-reboot array recovery: resolve every online member's in-doubt
  // transactions against the coordinator's records (REDO forward when the
  // record is durable, abort otherwise), flush members that rolled forward,
  // then release records with no in-doubt member left. Skipped entirely
  // while the coordinator is offline — in-doubt state must wait for it.
  Status ResolveInDoubtArray();
  void DeferError(const Status& s);
  Status TakeDeferredError();
  void NoteMemberFault(uint32_t member, bool offline);

  const VolumeConfig config_;
  SimClock* const clock_;
  std::vector<std::unique_ptr<storage::SimSsd>> members_;
  std::vector<bool> powered_;  // per-member fault domain state
  uint64_t per_device_pages_ = 0;  // whole stripe units only
  uint64_t num_pages_ = 0;
  // TxId -> members with uncommitted writes; std::map for deterministic
  // fan-out order independent of allocation behavior.
  std::map<storage::TxId, std::set<uint32_t>> participants_;
  Status deferred_error_;
  trace::Tracer* tracer_ = nullptr;
  // Volume snapshot pins: token -> per-member pinned epoch. Tokens are
  // host-side state (the members only know their own epochs), so they do
  // not survive an array power cycle — matching the members' volatile pins.
  uint64_t next_snap_token_ = 1;
  std::map<uint64_t, std::vector<uint64_t>> snap_pins_;
  // Crash-scripting hooks (one-shot).
  int64_t cut_after_prepare_ = -1;
  bool tear_commit_record_ = false;
};

}  // namespace xftl::host

#endif  // XFTL_HOST_VOLUME_H_
