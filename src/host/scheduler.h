// SessionScheduler: a discrete-event loop that interleaves N sessions on the
// ONE shared SimClock the whole stack advances.
//
// The problem: the stack below is written synchronously — a dispatched
// transaction runs top to bottom, advancing the clock through host CPU,
// wire transfers AND device-side waits. Naively running sessions back to
// back would serialize everything, including the flash program time that a
// real array overlaps across independent devices and banks.
//
// The model: SimClock distinguishes occupancy charges (Advance: host CPU,
// syscalls, wire, ECC, backoff) from completion waits (AdvanceTo: flash
// retire, NCQ slots, barrier drains), accumulating the latter in waited().
// For each dispatch the scheduler
//   1. sets the clock to the transaction's start time t0 (rewinding if a
//      previous dispatch left the clock later — the rewind privilege is
//      acquired from the clock, which enforces a single owner),
//   2. runs the whole transaction synchronously, observing completion time
//      t1 and the waited share w of the span,
//   3. records the transaction's latency as t1 - arrival, then rewinds the
//      clock to t0 + (t1 - t0 - w): the host is free again after its busy
//      share; the device-side tail keeps cooking on the members' busy-until
//      timelines, which live in the future and are never rewound.
// Work bound for the same device therefore still serializes (its bank and
// queue timelines only move forward), while sessions' waits on DIFFERENT
// devices — or different banks — overlap in simulated time. Host CPU and
// link lanes are effectively per-session (a many-core host with one lane
// per connection); only device-side resources are contended. DESIGN.md §9
// discusses the fidelity of this approximation.
//
// Dispatch order: next-event by ready time, ready = max(next arrival,
// previous completion) per session, ties broken by session id — fully
// deterministic under fixed seeds, which the determinism test pins by
// comparing per-device FtlStats across two identical runs.
#ifndef XFTL_HOST_SCHEDULER_H_
#define XFTL_HOST_SCHEDULER_H_

#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "host/session.h"
#include "trace/tracer.h"

namespace xftl::host {

// Per-session accounting the scheduler maintains while running.
struct SessionProgress {
  Session* session = nullptr;
  SimNanos next_arrival = 0;  // when the next transaction wants to start
  SimNanos prev_done = 0;     // completion time of the previous dispatch
  SimNanos busy = 0;          // cumulative host-busy nanoseconds
  SimNanos waited = 0;        // cumulative device-wait nanoseconds
};

class SessionScheduler {
 public:
  // Acquires the clock's rewind privilege for its lifetime; constructing a
  // second scheduler on the same clock CHECK-fails until the first dies.
  // Sessions are not owned and must outlive the scheduler.
  SessionScheduler(SimClock* clock, std::vector<Session*> sessions,
                   trace::Tracer* tracer = nullptr);
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  // Runs until every session dispatched its configured transaction count,
  // or the first dispatch fails (armed power cut, dead media, ...): the
  // error is returned with all completed accounting intact, and the clock
  // is left wherever the failing dispatch stopped — the crash instant.
  Status Run();

  // Dispatches at most `n` transactions (0 = unlimited); same error
  // semantics as Run(). Returns the number actually dispatched.
  StatusOr<uint64_t> RunSteps(uint64_t n);

  // Keep scheduling past dispatch failures (degraded-array runs: sessions
  // striped over a dead member keep failing while survivors commit). Each
  // failure counts once in failed() and the session's next arrival is still
  // scheduled; without this a failed session would re-dispatch forever.
  void set_continue_on_error(bool v) { continue_on_error_ = v; }
  uint64_t failed() const { return failed_; }

  // Completion time of the latest finished dispatch — the array-wide
  // makespan once Run() returned OK. Run() leaves the clock here.
  SimNanos makespan() const { return makespan_; }
  uint64_t dispatched() const { return dispatched_; }
  const std::vector<SessionProgress>& progress() const { return progress_; }

 private:
  // Index of the runnable session with the earliest ready time (ties:
  // lowest session id), or -1 when everyone is done.
  int PickNext() const;
  Status DispatchOne(SessionProgress* p);

  SimClock* const clock_;
  trace::Tracer* const tracer_;
  std::vector<SessionProgress> progress_;
  SimNanos makespan_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t failed_ = 0;
  bool continue_on_error_ = false;
};

}  // namespace xftl::host

#endif  // XFTL_HOST_SCHEDULER_H_
