#include "host/scheduler.h"

#include <algorithm>

namespace xftl::host {

SessionScheduler::SessionScheduler(SimClock* clock,
                                   std::vector<Session*> sessions,
                                   trace::Tracer* tracer)
    : clock_(clock), tracer_(tracer) {
  CHECK(clock != nullptr);
  CHECK(!sessions.empty());
  clock_->AcquireRewind(this);
  const SimNanos start = clock_->Now();
  makespan_ = start;
  progress_.reserve(sessions.size());
  for (Session* s : sessions) {
    CHECK(s != nullptr);
    SessionProgress p;
    p.session = s;
    // First arrival: sampled from the arrival process for open-loop
    // sessions (a Poisson process has no event AT its origin), immediate
    // for closed-loop ones.
    p.next_arrival =
        start + (s->config().open_loop ? s->NextInterarrival() : 0);
    p.prev_done = start;
    progress_.push_back(p);
  }
}

SessionScheduler::~SessionScheduler() { clock_->ReleaseRewind(this); }

int SessionScheduler::PickNext() const {
  int best = -1;
  SimNanos best_ready = 0;
  for (size_t i = 0; i < progress_.size(); ++i) {
    const SessionProgress& p = progress_[i];
    if (p.session->Done()) continue;
    SimNanos ready = std::max(p.next_arrival, p.prev_done);
    if (best < 0 || ready < best_ready) {
      best = int(i);
      best_ready = ready;
    }
    // Equal ready times fall through: the first (lowest-id) session wins.
  }
  return best;
}

Status SessionScheduler::DispatchOne(SessionProgress* p) {
  Session* s = p->session;
  const SimNanos arrival = p->next_arrival;
  const SimNanos t0 = std::max(arrival, p->prev_done);

  // Position the clock at the dispatch start. Earlier than now: a previous
  // dispatch of another session left the clock at its completion; this
  // transaction starts in that dispatch's past, which is the whole point —
  // device timelines are in the future and keep serializing same-device
  // work. Later than now: the array was idle; skip ahead (and exclude the
  // idle skip from this dispatch's waited share by snapshotting after).
  if (t0 <= clock_->Now()) {
    clock_->Rewind(t0, this);
  } else {
    clock_->AdvanceTo(t0);
  }

  if (tracer_ != nullptr) tracer_->set_session(s->id());
  const SimNanos waited_before = clock_->waited();
  Status status = s->RunTxn();
  const SimNanos t1 = clock_->Now();
  const SimNanos waited = clock_->waited() - waited_before;
  if (tracer_ != nullptr) tracer_->set_session(0);

  dispatched_++;
  if (!status.ok()) {
    // Crash/fault mid-dispatch: leave the clock at the failure instant; the
    // caller owns what happens next (usually an array power cycle). In
    // continue-on-error mode the session still gets its next arrival — a
    // degraded-array run keeps going, with this failure counted.
    p->prev_done = t1;
    makespan_ = std::max(makespan_, t1);
    if (continue_on_error_) {
      p->next_arrival = s->config().open_loop ? arrival + s->NextInterarrival()
                                              : t1 + s->NextInterarrival();
    }
    return status;
  }

  CHECK_GE(t1, t0);
  CHECK_GE(t1 - t0, waited);
  const SimNanos busy = (t1 - t0) - waited;
  p->busy += busy;
  p->waited += waited;
  p->prev_done = t1;
  makespan_ = std::max(makespan_, t1);

  const SimNanos latency = t1 - arrival;
  s->NoteLatency(latency);
  if (tracer_ != nullptr) {
    tracer_->Record(trace::TraceEvent{t0, trace::Layer::kHost,
                                      trace::Op::kTxn,
                                      uint32_t(s->dispatched()), s->id(),
                                      s->committed(), busy, latency,
                                      StatusCode::kOk});
  }

  // Release the host: this session occupied it for `busy`; the waited tail
  // belongs to device timelines that stay in the future.
  clock_->Rewind(t0 + busy, this);

  // Schedule the next arrival.
  if (s->config().open_loop) {
    p->next_arrival = arrival + s->NextInterarrival();
  } else {
    p->next_arrival = t1 + s->NextInterarrival();
  }
  return Status::OK();
}

Status SessionScheduler::Run() {
  while (true) {
    int i = PickNext();
    if (i < 0) break;
    Status s = DispatchOne(&progress_[i]);
    if (!s.ok()) {
      if (!continue_on_error_) return s;
      failed_++;
    }
  }
  // Land the clock on the makespan: benchmarks read elapsed time off the
  // clock, and the array is busy until its last completion.
  clock_->AdvanceTo(makespan_);
  return Status::OK();
}

StatusOr<uint64_t> SessionScheduler::RunSteps(uint64_t n) {
  uint64_t steps = 0;
  while (n == 0 || steps < n) {
    int i = PickNext();
    if (i < 0) break;
    Status s = DispatchOne(&progress_[i]);
    if (!s.ok()) {
      if (!continue_on_error_) return s;
      failed_++;
    }
    steps++;
  }
  return steps;
}

}  // namespace xftl::host
