#include "host/volume.h"

#include "check/flash_image.h"

namespace xftl::host {

StripedVolume::StripedVolume(const VolumeConfig& config, SimClock* clock)
    : config_(config), clock_(clock) {
  CHECK(clock != nullptr);
  CHECK_GE(config.num_devices, 1u);
  CHECK_GE(config.stripe_pages, 1u);
  if (!config.member_specs.empty()) {
    CHECK_EQ(config.member_specs.size(), size_t(config.num_devices))
        << "member_specs must cover every member";
  }
  members_.reserve(config.num_devices);
  for (uint32_t i = 0; i < config.num_devices; ++i) {
    const storage::SsdSpec& spec =
        config.member_specs.empty() ? config.spec : config.member_specs[i];
    members_.push_back(std::make_unique<storage::SimSsd>(spec, clock));
  }
  powered_.assign(config.num_devices, true);
  // The commit disciplines below (Barrier's completion-wait fallback,
  // TxCommit's barrier-mode compensation) read member 0's firmware mode and
  // apply it array-wide; a mixed-firmware array would silently get the
  // wrong discipline on some members, so homogeneity is enforced here.
  for (uint32_t i = 1; i < config.num_devices; ++i) {
    CHECK(members_[i]->device()->commit_mode() ==
          members_[0]->device()->commit_mode())
        << "array members must share one commit-mode firmware";
  }
  // Round each member down to whole stripe units so the map is a bijection
  // onto [0, num_pages): a partial tail unit would alias across members.
  uint64_t member_pages = members_[0]->device()->num_pages();
  per_device_pages_ =
      (member_pages / config.stripe_pages) * uint64_t(config.stripe_pages);
  CHECK_GT(per_device_pages_, 0u)
      << "stripe_pages larger than a member's logical space";
  num_pages_ = per_device_pages_ * members_.size();
}

StripedVolume::~StripedVolume() = default;

StripedVolume::Location StripedVolume::Map(uint64_t lpn) const {
  DCHECK_LT(lpn, num_pages_);
  const uint64_t unit = lpn / config_.stripe_pages;
  const uint64_t n = members_.size();
  Location loc;
  loc.device = uint32_t(unit % n);
  loc.lpn = (unit / n) * config_.stripe_pages + lpn % config_.stripe_pages;
  return loc;
}

uint64_t StripedVolume::Unmap(uint32_t device, uint64_t dev_lpn) const {
  DCHECK_LT(device, members_.size());
  DCHECK_LT(dev_lpn, per_device_pages_);
  const uint64_t unit =
      (dev_lpn / config_.stripe_pages) * members_.size() + device;
  return unit * config_.stripe_pages + dev_lpn % config_.stripe_pages;
}

uint32_t StripedVolume::page_size() const {
  return members_[0]->device()->page_size();
}

Status StripedVolume::CheckMember(uint32_t dev) const {
  if (!powered_[dev]) {
    return Status::IoError("member " + std::to_string(dev) +
                           " is powered off");
  }
  return Status::OK();
}

void StripedVolume::DeferError(const Status& s) {
  DCHECK(!s.ok());
  // errseq semantics, one level up from the per-device SATA latch: first
  // loss wins, the next barrier/commit reports it once.
  if (deferred_error_.ok()) deferred_error_ = s;
}

Status StripedVolume::TakeDeferredError() {
  Status s = deferred_error_;
  deferred_error_ = Status::OK();
  return s;
}

void StripedVolume::NoteMemberFault(uint32_t member, bool offline) {
  if (tracer_ != nullptr) {
    tracer_->Record(trace::Layer::kHost, trace::Op::kMemberFault,
                    clock_->Now(), 0, member, offline ? 1 : 0, 0,
                    StatusCode::kOk);
  }
}

Status StripedVolume::Read(uint64_t page, uint8_t* data) {
  Location loc = Map(page);
  // Degraded array: surviving stripes keep serving; a dead stripe fails
  // fast instead of touching the powered-off member.
  XFTL_RETURN_IF_ERROR(CheckMember(loc.device));
  return members_[loc.device]->device()->Read(loc.lpn, data);
}

Status StripedVolume::Write(uint64_t page, const uint8_t* data) {
  Location loc = Map(page);
  Status s = CheckMember(loc.device);
  if (!s.ok()) {
    DeferError(s);
    return s;
  }
  return members_[loc.device]->device()->Write(loc.lpn, data);
}

Status StripedVolume::Trim(uint64_t page) {
  Location loc = Map(page);
  Status s = CheckMember(loc.device);
  if (!s.ok()) {
    DeferError(s);
    return s;
  }
  return members_[loc.device]->device()->Trim(loc.lpn);
}

Status StripedVolume::FlushBarrier() {
  // Every online member must drain: a barrier is an array-wide durability
  // point. All are visited even after a failure so the survivors still
  // reach their barrier (and surface their own deferred errors). A write
  // lost against an offline member surfaces here via the volume latch.
  Status first = TakeDeferredError();
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    if (!powered_[dev]) continue;
    Status s = members_[dev]->device()->FlushBarrier();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status StripedVolume::Barrier() {
  // Epoch-prefix durability is a PER-MEMBER promise: with several members,
  // order-only barriers cannot stop member A from persisting a later-epoch
  // write while member B loses an earlier one, and a cut in that window
  // tears exactly the cross-member orderings the barrier-commit callers
  // rely on (checkpoint before journal overwrite, commit record before
  // checkpoint, SQL journal before db pages). Until a cross-member epoch
  // protocol exists, a multi-member array serves Barrier() with
  // completion-wait semantics on barrier firmware; a single member keeps
  // the order-only fast path. kDrain members already completion-wait via
  // the FlushBarrier fallback and kPlp members lose nothing at a cut, so
  // only kBarrier firmware needs the stronger verb (commit modes are
  // homogeneous across members — checked at construction).
  const bool completion_wait =
      members_.size() > 1 &&
      members_[0]->device()->commit_mode() == ftl::CommitMode::kBarrier;
  Status first = TakeDeferredError();
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    if (!powered_[dev]) continue;
    Status s = completion_wait ? members_[dev]->device()->AwaitDurable()
                               : members_[dev]->device()->Barrier();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

bool StripedVolume::SupportsTransactions() const {
  return members_[0]->device()->SupportsTransactions();
}

Status StripedVolume::TxRead(storage::TxId t, uint64_t page, uint8_t* data) {
  Location loc = Map(page);
  XFTL_RETURN_IF_ERROR(CheckMember(loc.device));
  return members_[loc.device]->device()->TxRead(t, loc.lpn, data);
}

bool StripedVolume::SupportsSnapshots() const {
  for (const auto& m : members_) {
    if (!m->device()->SupportsSnapshots()) return false;
  }
  return true;
}

StatusOr<uint64_t> StripedVolume::SnapPin() {
  // Pin every member at one simulated instant (no member command advances
  // the clock between pins); ascending order keeps fan-out deterministic.
  // Any failure unwinds the members already pinned — a token either covers
  // the whole array or does not exist.
  std::vector<uint64_t> epochs(members_.size(), 0);
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    Status s = CheckMember(dev);
    if (s.ok()) {
      auto pin = members_[dev]->device()->SnapPin();
      if (!pin.ok()) {
        s = pin.status();
      } else {
        epochs[dev] = pin.value();
      }
    }
    if (!s.ok()) {
      for (uint32_t j = 0; j < dev; ++j) {
        if (powered_[j]) members_[j]->device()->SnapUnpin(epochs[j]);
      }
      return s;
    }
  }
  uint64_t token = next_snap_token_++;
  snap_pins_[token] = std::move(epochs);
  return token;
}

Status StripedVolume::SnapUnpin(uint64_t token) {
  auto it = snap_pins_.find(token);
  if (it == snap_pins_.end()) return Status::OK();  // lenient, like members
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    // A member that power-cycled since the pin already dropped its epochs;
    // its SnapUnpin is a no-op we can skip while it is offline.
    if (!powered_[dev]) continue;
    members_[dev]->device()->SnapUnpin(it->second[dev]);
  }
  snap_pins_.erase(it);
  return Status::OK();
}

Status StripedVolume::SnapRead(uint64_t token, uint64_t page, uint8_t* data) {
  auto it = snap_pins_.find(token);
  if (it == snap_pins_.end()) {
    return Status::FailedPrecondition("snapshot token " +
                                      std::to_string(token) +
                                      " is not pinned on this volume");
  }
  Location loc = Map(page);
  XFTL_RETURN_IF_ERROR(CheckMember(loc.device));
  // A rebooted member rejects the stale epoch (FailedPrecondition) — the
  // reader's snapshot died with the member's pins, never silently serving
  // newer data.
  return members_[loc.device]->device()->SnapRead(it->second[loc.device],
                                                  loc.lpn, data);
}

Status StripedVolume::TxWrite(storage::TxId t, uint64_t page,
                              const uint8_t* data) {
  Location loc = Map(page);
  Status s = CheckMember(loc.device);
  if (!s.ok()) {
    DeferError(s);
    return s;
  }
  s = members_[loc.device]->device()->TxWrite(t, loc.lpn, data);
  if (s.ok()) participants_[t].insert(loc.device);
  return s;
}

Status StripedVolume::WriteBatch(const uint64_t* pages,
                                 const uint8_t* const* datas, size_t n,
                                 size_t* accepted) {
  return FanOutBatch(ftl::kNoTx, pages, datas, n, accepted);
}

Status StripedVolume::TxWriteBatch(storage::TxId t, const uint64_t* pages,
                                   const uint8_t* const* datas, size_t n,
                                   size_t* accepted) {
  return FanOutBatch(t, pages, datas, n, accepted);
}

Status StripedVolume::FanOutBatch(storage::TxId t, const uint64_t* pages,
                                  const uint8_t* const* datas, size_t n,
                                  size_t* accepted) {
  if (members_.size() == 1 && t == ftl::kNoTx && powered_[0]) {
    // Single member, untagged: pages still need remapping but the batch
    // passes through whole.
    std::vector<uint64_t> local(n);
    for (size_t i = 0; i < n; ++i) local[i] = Map(pages[i]).lpn;
    return members_[0]->device()->WriteBatch(local.data(), datas, n, accepted);
  }

  // Group into per-member sub-batches, keeping input order inside each.
  struct SubBatch {
    std::vector<uint64_t> local_pages;
    std::vector<const uint8_t*> data;
    std::vector<size_t> input_index;
  };
  std::vector<SubBatch> subs(members_.size());
  for (size_t i = 0; i < n; ++i) {
    Location loc = Map(pages[i]);
    SubBatch& sb = subs[loc.device];
    sb.local_pages.push_back(loc.lpn);
    sb.data.push_back(datas[i]);
    sb.input_index.push_back(i);
  }

  // Issue in ascending device order. A member failing mid-batch accepts a
  // prefix of ITS pages; pages already accepted by other members are not a
  // prefix of the caller's input, so the reported `accepted` is the longest
  // input prefix that is fully durable — the reissued suffix may repeat
  // pages a member already holds, which is idempotent through the FTL's
  // copy-on-write path (and invisible pre-commit under a TxId).
  std::vector<bool> page_ok(n, false);
  Status first;
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    SubBatch& sb = subs[dev];
    if (sb.local_pages.empty()) continue;
    Status s = CheckMember(dev);
    if (!s.ok()) {
      // Offline member: its pages fail fast and latch the volume errseq;
      // other members' sub-batches still land (surviving stripes work).
      DeferError(s);
      if (first.ok()) first = s;
      continue;
    }
    size_t dev_accepted = 0;
    if (t == ftl::kNoTx) {
      s = members_[dev]->device()->WriteBatch(sb.local_pages.data(),
                                              sb.data.data(),
                                              sb.local_pages.size(),
                                              &dev_accepted);
    } else {
      s = members_[dev]->device()->TxWriteBatch(t, sb.local_pages.data(),
                                                sb.data.data(),
                                                sb.local_pages.size(),
                                                &dev_accepted);
      if (dev_accepted > 0) participants_[t].insert(dev);
    }
    if (s.ok() && dev_accepted < sb.local_pages.size()) {
      // A member must not report success for a partially-accepted batch:
      // silently counting it fully accepted would let the caller skip the
      // reissue and lose the rejected suffix.
      s = Status::IoError("member " + std::to_string(dev) +
                          " accepted a partial batch without an error");
    }
    for (size_t k = 0; k < dev_accepted; ++k) page_ok[sb.input_index[k]] = true;
    if (!s.ok() && first.ok()) first = s;
  }

  if (accepted != nullptr) {
    size_t prefix = 0;
    while (prefix < n && page_ok[prefix]) ++prefix;
    *accepted = prefix;
  }
  return first;
}

void StripedVolume::AbortOn(const std::set<uint32_t>& parts,
                            storage::TxId t) {
  for (uint32_t dev : parts) {
    if (!powered_[dev]) continue;  // resolved at that member's reboot
    (void)members_[dev]->device()->TxAbort(t);
  }
}

Status StripedVolume::TxCommit(storage::TxId t) {
  // errseq: an acknowledged write lost against an offline member fails the
  // commit before any member executes it (mirrors SataDevice::TxCommit).
  XFTL_RETURN_IF_ERROR(TakeDeferredError());
  auto it = participants_.find(t);
  if (it == participants_.end()) {
    // Read-only or empty transaction: nothing reached any member; the
    // single-device front-end treats this as an error only on abort, and a
    // commit of nothing is trivially durable.
    return Status::OK();
  }
  const std::set<uint32_t> parts = it->second;

  if (!config_.two_phase_commit || parts.size() == 1) {
    // A single participant commits atomically inside its own X-FTL — no
    // cross-device window exists, so the protocol overhead is skipped.
    // With two_phase_commit off this is the unsafe serial fan-out: a power
    // cut mid-loop leaves the transaction committed on a prefix of its
    // participants (the baseline bench/ablation_array_faults measures).
    Status first;
    for (uint32_t dev : parts) {
      Status s = CheckMember(dev);
      if (s.ok()) s = members_[dev]->device()->TxCommit(t);
      if (!s.ok() && first.ok()) first = s;
    }
    // Barrier-firmware member commits are order-only, and epoch-prefix
    // durability is a PER-MEMBER promise: a volatile ack here could be lost
    // while a later transaction on a different member survives, breaking
    // the array's global prefix. The volume therefore keeps ack == durable
    // by completion-waiting the member(s) before acknowledging. Member 0
    // speaks for the whole array: commit modes are homogeneous, checked at
    // construction.
    if (first.ok() &&
        members_[0]->device()->commit_mode() == ftl::CommitMode::kBarrier) {
      for (uint32_t dev : parts) {
        Status s = CheckMember(dev);
        if (s.ok()) s = members_[dev]->device()->AwaitDurable();
        if (!s.ok() && first.ok()) first = s;
      }
    }
    participants_.erase(t);
    return first;
  }

  // --- phase 1: PREPARE every participant, ascending. Any failure aborts
  // the whole transaction — nothing is visible yet on any member.
  for (uint32_t dev : parts) {
    Status s = CheckMember(dev);
    if (s.ok()) s = members_[dev]->device()->TxPrepare(t);
    if (!s.ok()) {
      AbortOn(parts, t);
      participants_.erase(t);
      return s;
    }
  }

  // Barrier-firmware prepares are order-only: the PREPARED markers are
  // still volatile when TxPrepare returns. The protocol's promise — a
  // prepared member can go either way after a crash — needs them in the
  // cells before the commit record exists, so the coordinator
  // completion-waits every participant here. The waits overlap: each
  // member's programs have been running concurrently on the shared clock,
  // so the pass costs roughly the slowest member, not the sum. (Member 0's
  // mode decides for all — homogeneity is checked at construction.)
  const bool ordered =
      members_[0]->device()->commit_mode() == ftl::CommitMode::kBarrier;
  if (ordered) {
    for (uint32_t dev : parts) {
      Status s = CheckMember(dev);
      if (s.ok()) s = members_[dev]->device()->AwaitDurable();
      if (!s.ok()) {
        AbortOn(parts, t);
        participants_.erase(t);
        return s;
      }
    }
  }

  // Crash-scripting hooks: the window between PREPARE and the commit
  // record is where the protocol earns its keep.
  if (cut_after_prepare_ >= 0) {
    uint32_t victim = uint32_t(cut_after_prepare_);
    cut_after_prepare_ = -1;
    CutPowerMember(victim);
  }
  if (tear_commit_record_) {
    tear_commit_record_ = false;
    // The next program on the coordinator — the first page of the commit
    // record's X-L2P snapshot — tears mid-write.
    members_[0]->flash()->ArmPowerFailure(1);
  }

  // --- commit point: the record on the coordinator. Not durable → the
  // transaction never happened; recovery aborts every prepared member.
  Status rs = CheckMember(0);
  if (rs.ok()) rs = members_[0]->device()->WriteCommitRecord(t);
  // Under barrier firmware the record snapshot is still in flight; it must
  // be in the cells before any member executes phase 2, or a coordinator
  // crash could erase the commit point after members already committed.
  if (rs.ok() && ordered) rs = members_[0]->device()->AwaitDurable();
  if (!rs.ok()) {
    AbortOn(parts, t);
    participants_.erase(t);
    return rs;
  }

  // --- phase 2: COMMIT fan-out, continuing past per-member errors — a
  // member that misses phase 2 is exactly what the retained record is for
  // (its reboot resolves the transaction forward).
  Status first;
  bool all_acked = true;
  for (uint32_t dev : parts) {
    Status s = CheckMember(dev);
    if (s.ok()) s = members_[dev]->device()->TxCommit(t);
    if (!s.ok()) {
      all_acked = false;
      if (first.ok()) first = s;
    }
  }
  if (all_acked && ordered) {
    // Barrier-mode member commits are order-only; the record may not be
    // released while any member's commit snapshot could still be lost, or a
    // crash would leave that member's entries PREPARED with no record —
    // resolving to abort a transaction the others committed.
    for (uint32_t dev : parts) {
      Status s = members_[dev]->device()->AwaitDurable();
      if (!s.ok()) {
        all_acked = false;
        if (first.ok()) first = s;
      }
    }
  }
  if (all_acked) {
    // Every participant's commit is durable (or PLP-protected), so the
    // record has no one left to redirect; release is lazy and idempotent.
    (void)members_[0]->device()->ReleaseCommitRecord(t);
  }
  participants_.erase(t);
  return first;
}

Status StripedVolume::TxAbort(storage::TxId t) {
  auto it = participants_.find(t);
  if (it == participants_.end()) return Status::OK();
  Status first;
  for (uint32_t dev : it->second) {
    if (!powered_[dev]) continue;  // nothing to abort: resolved at reboot
    Status s = members_[dev]->device()->TxAbort(t);
    if (!s.ok() && first.ok()) first = s;
  }
  participants_.erase(it);
  return first;
}

std::set<uint32_t> StripedVolume::Participants(storage::TxId t) const {
  auto it = participants_.find(t);
  if (it == participants_.end()) return {};
  return it->second;
}

bool StripedVolume::Degraded() const {
  for (bool p : powered_) {
    if (!p) return true;
  }
  return false;
}

void StripedVolume::CutPowerMember(uint32_t i) {
  CHECK_LT(i, members_.size());
  if (!powered_[i]) return;
  // CutPower never advances the shared clock, so this cut lands at the
  // same simulated instant no matter how many members a caller loops over
  // — only Reboot (recovery) moves time.
  members_[i]->CutPower();
  powered_[i] = false;
  NoteMemberFault(i, true);
}

Status StripedVolume::RebootMember(uint32_t i) {
  CHECK_LT(i, members_.size());
  if (powered_[i]) return Status::OK();
  Status s = members_[i]->Reboot();
  powered_[i] = true;
  NoteMemberFault(i, false);
  XFTL_RETURN_IF_ERROR(s);
  // Transactions the dead member participated in are doomed: their writes
  // there were discarded by recovery. Abort the survivors' halves so stale
  // ACTIVE X-L2P slots from abandoned transactions cannot pin conflicts.
  for (auto it = participants_.begin(); it != participants_.end();) {
    if (it->second.count(i) != 0) {
      AbortOn(it->second, it->first);
      it = participants_.erase(it);
    } else {
      ++it;
    }
  }
  return ResolveInDoubtArray();
}

Status StripedVolume::PowerCycleMember(uint32_t i) {
  CutPowerMember(i);
  return RebootMember(i);
}

Status StripedVolume::ResolveInDoubtArray() {
  // In-doubt state can only be resolved against the coordinator's records;
  // while member 0 is offline every prepared transaction stays in doubt
  // (both versions retained) until it returns.
  if (!powered_[0]) return Status::OK();
  storage::SataDevice* coord = members_[0]->device();
  Status first;
  std::vector<bool> rolled_forward(members_.size(), false);
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    if (!powered_[dev]) continue;
    for (storage::TxId t : members_[dev]->device()->InDoubtTransactions()) {
      bool commit = coord->HasCommitRecord(t);
      Status s = members_[dev]->device()->ResolveInDoubt(t, commit);
      if (!s.ok() && first.ok()) first = s;
      if (s.ok() && commit) rolled_forward[dev] = true;
    }
  }
  // A record may only be released once no member still needs it for REDO —
  // and the roll-forwards must be durable first, or a later crash would
  // resurface the prepared entries with the record already gone and abort
  // a transaction other members committed.
  bool all_online = !Degraded();
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    if (rolled_forward[dev]) {
      // Completion-wait regardless of commit mode: with barrier firmware an
      // ordinary FlushBarrier is order-only, which is not enough here.
      Status s = members_[dev]->device()->AwaitDurable();
      if (!s.ok() && first.ok()) first = s;
    }
  }
  if (all_online && first.ok()) {
    for (storage::TxId t : coord->CommitRecords()) {
      bool settled = true;
      for (uint32_t dev = 0; dev < members_.size() && settled; ++dev) {
        for (storage::TxId d : members_[dev]->device()->InDoubtTransactions()) {
          if (d == t) settled = false;
        }
      }
      if (settled) {
        Status s = coord->ReleaseCommitRecord(t);
        if (!s.ok() && first.ok()) first = s;
      }
    }
  }
  return first;
}

Status StripedVolume::PowerCycle() {
  // One rail: every member loses power at the same instant. CutPower does
  // not advance the clock; Reboot (recovery) does, so all cuts land before
  // the first reboot starts — the per-member loop is safe precisely
  // because cutting is instantaneous on the shared timeline.
  for (uint32_t i = 0; i < members_.size(); ++i) CutPowerMember(i);
  participants_.clear();
  snap_pins_.clear();  // pins are volatile on every member; tokens die too
  Status first;
  for (uint32_t i = 0; i < members_.size(); ++i) {
    // Ascending order brings the coordinator back first, but resolution
    // waits for the full set: RebootMember's array scan is idempotent.
    Status s = RebootMember(i);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status StripedVolume::SaveMemberImages(const std::string& prefix) {
  for (uint32_t i = 0; i < members_.size(); ++i) {
    const storage::SsdSpec& spec =
        config_.member_specs.empty() ? config_.spec : config_.member_specs[i];
    check::ImageParams p;
    p.meta_blocks = spec.ftl.meta_blocks;
    p.num_logical_pages = spec.ftl.num_logical_pages;
    p.transactional = spec.transactional;
    p.num_devices = uint32_t(members_.size());
    p.device_index = i;
    p.stripe_pages = config_.stripe_pages;
    XFTL_RETURN_IF_ERROR(check::SaveImage(
        *members_[i]->flash(), p, prefix + "." + std::to_string(i) + ".img"));
  }
  return Status::OK();
}

void StripedVolume::SetTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& m : members_) m->SetTracer(tracer);
}

}  // namespace xftl::host
