#include "host/volume.h"

namespace xftl::host {

StripedVolume::StripedVolume(const VolumeConfig& config, SimClock* clock)
    : config_(config), clock_(clock) {
  CHECK(clock != nullptr);
  CHECK_GE(config.num_devices, 1u);
  CHECK_GE(config.stripe_pages, 1u);
  members_.reserve(config.num_devices);
  for (uint32_t i = 0; i < config.num_devices; ++i) {
    members_.push_back(std::make_unique<storage::SimSsd>(config.spec, clock));
  }
  // Round each member down to whole stripe units so the map is a bijection
  // onto [0, num_pages): a partial tail unit would alias across members.
  uint64_t member_pages = members_[0]->device()->num_pages();
  per_device_pages_ =
      (member_pages / config.stripe_pages) * uint64_t(config.stripe_pages);
  CHECK_GT(per_device_pages_, 0u)
      << "stripe_pages larger than a member's logical space";
  num_pages_ = per_device_pages_ * members_.size();
}

StripedVolume::~StripedVolume() = default;

StripedVolume::Location StripedVolume::Map(uint64_t lpn) const {
  DCHECK_LT(lpn, num_pages_);
  const uint64_t unit = lpn / config_.stripe_pages;
  const uint64_t n = members_.size();
  Location loc;
  loc.device = uint32_t(unit % n);
  loc.lpn = (unit / n) * config_.stripe_pages + lpn % config_.stripe_pages;
  return loc;
}

uint64_t StripedVolume::Unmap(uint32_t device, uint64_t dev_lpn) const {
  DCHECK_LT(device, members_.size());
  DCHECK_LT(dev_lpn, per_device_pages_);
  const uint64_t unit =
      (dev_lpn / config_.stripe_pages) * members_.size() + device;
  return unit * config_.stripe_pages + dev_lpn % config_.stripe_pages;
}

uint32_t StripedVolume::page_size() const {
  return members_[0]->device()->page_size();
}

Status StripedVolume::Read(uint64_t page, uint8_t* data) {
  Location loc = Map(page);
  return members_[loc.device]->device()->Read(loc.lpn, data);
}

Status StripedVolume::Write(uint64_t page, const uint8_t* data) {
  Location loc = Map(page);
  return members_[loc.device]->device()->Write(loc.lpn, data);
}

Status StripedVolume::Trim(uint64_t page) {
  Location loc = Map(page);
  return members_[loc.device]->device()->Trim(loc.lpn);
}

Status StripedVolume::FlushBarrier() {
  // Every member must drain: a barrier is an array-wide durability point.
  // All members are visited even after a failure so the survivors still
  // reach their barrier (and surface their own deferred errors).
  Status first;
  for (auto& m : members_) {
    Status s = m->device()->FlushBarrier();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

bool StripedVolume::SupportsTransactions() const {
  return members_[0]->device()->SupportsTransactions();
}

Status StripedVolume::TxRead(storage::TxId t, uint64_t page, uint8_t* data) {
  Location loc = Map(page);
  return members_[loc.device]->device()->TxRead(t, loc.lpn, data);
}

Status StripedVolume::TxWrite(storage::TxId t, uint64_t page,
                              const uint8_t* data) {
  Location loc = Map(page);
  Status s = members_[loc.device]->device()->TxWrite(t, loc.lpn, data);
  if (s.ok()) participants_[t].insert(loc.device);
  return s;
}

Status StripedVolume::WriteBatch(const uint64_t* pages,
                                 const uint8_t* const* datas, size_t n,
                                 size_t* accepted) {
  return FanOutBatch(ftl::kNoTx, pages, datas, n, accepted);
}

Status StripedVolume::TxWriteBatch(storage::TxId t, const uint64_t* pages,
                                   const uint8_t* const* datas, size_t n,
                                   size_t* accepted) {
  return FanOutBatch(t, pages, datas, n, accepted);
}

Status StripedVolume::FanOutBatch(storage::TxId t, const uint64_t* pages,
                                  const uint8_t* const* datas, size_t n,
                                  size_t* accepted) {
  if (members_.size() == 1 && t == ftl::kNoTx) {
    // Single member, untagged: pages still need remapping but the batch
    // passes through whole.
    std::vector<uint64_t> local(n);
    for (size_t i = 0; i < n; ++i) local[i] = Map(pages[i]).lpn;
    return members_[0]->device()->WriteBatch(local.data(), datas, n, accepted);
  }

  // Group into per-member sub-batches, keeping input order inside each.
  struct SubBatch {
    std::vector<uint64_t> local_pages;
    std::vector<const uint8_t*> data;
    std::vector<size_t> input_index;
  };
  std::vector<SubBatch> subs(members_.size());
  for (size_t i = 0; i < n; ++i) {
    Location loc = Map(pages[i]);
    SubBatch& sb = subs[loc.device];
    sb.local_pages.push_back(loc.lpn);
    sb.data.push_back(datas[i]);
    sb.input_index.push_back(i);
  }

  // Issue in ascending device order. A member failing mid-batch accepts a
  // prefix of ITS pages; pages already accepted by other members are not a
  // prefix of the caller's input, so the reported `accepted` is the longest
  // input prefix that is fully durable — the reissued suffix may repeat
  // pages a member already holds, which is idempotent through the FTL's
  // copy-on-write path (and invisible pre-commit under a TxId).
  std::vector<bool> page_ok(n, false);
  Status first;
  for (uint32_t dev = 0; dev < members_.size(); ++dev) {
    SubBatch& sb = subs[dev];
    if (sb.local_pages.empty()) continue;
    size_t dev_accepted = 0;
    Status s;
    if (t == ftl::kNoTx) {
      s = members_[dev]->device()->WriteBatch(sb.local_pages.data(),
                                              sb.data.data(),
                                              sb.local_pages.size(),
                                              &dev_accepted);
    } else {
      s = members_[dev]->device()->TxWriteBatch(t, sb.local_pages.data(),
                                                sb.data.data(),
                                                sb.local_pages.size(),
                                                &dev_accepted);
      if (dev_accepted > 0) participants_[t].insert(dev);
    }
    for (size_t k = 0; k < dev_accepted; ++k) page_ok[sb.input_index[k]] = true;
    if (!s.ok() && first.ok()) first = s;
  }

  if (accepted != nullptr) {
    size_t prefix = 0;
    while (prefix < n && page_ok[prefix]) ++prefix;
    *accepted = prefix;
  }
  return first;
}

Status StripedVolume::TxCommit(storage::TxId t) {
  auto it = participants_.find(t);
  if (it == participants_.end()) {
    // Read-only or empty transaction: nothing reached any member; the
    // single-device front-end treats this as an error only on abort, and a
    // commit of nothing is trivially durable.
    return Status::OK();
  }
  // No cross-device atomic commit: members commit one after another (the
  // known-deviation window documented in the header / DESIGN.md §9).
  Status first;
  for (uint32_t dev : it->second) {
    Status s = members_[dev]->device()->TxCommit(t);
    if (!s.ok() && first.ok()) first = s;
  }
  participants_.erase(it);
  return first;
}

Status StripedVolume::TxAbort(storage::TxId t) {
  auto it = participants_.find(t);
  if (it == participants_.end()) return Status::OK();
  Status first;
  for (uint32_t dev : it->second) {
    Status s = members_[dev]->device()->TxAbort(t);
    if (!s.ok() && first.ok()) first = s;
  }
  participants_.erase(it);
  return first;
}

std::set<uint32_t> StripedVolume::Participants(storage::TxId t) const {
  auto it = participants_.find(t);
  if (it == participants_.end()) return {};
  return it->second;
}

Status StripedVolume::PowerCycle() {
  // One rail: every member loses power at the same instant. CutPower does
  // not advance the clock; Reboot (recovery) does, so the cuts must all
  // happen before the first reboot starts.
  for (auto& m : members_) m->CutPower();
  participants_.clear();
  Status first;
  for (auto& m : members_) {
    Status s = m->Reboot();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

void StripedVolume::SetTracer(trace::Tracer* tracer) {
  for (auto& m : members_) m->SetTracer(tracer);
}

}  // namespace xftl::host
