// Session: one host connection — its own database, its own open-transaction
// context, its own arrival process and latency accounting. Sessions are
// passive: they know how to run ONE application transaction and how to
// sample the inter-arrival gap to the next one; the SessionScheduler
// (scheduler.h) decides when each runs and how their device time overlaps.
//
// The transaction shape mirrors tests/crash_sweep_test.cc so the same ACID
// verification applies after an array power cut: transaction t inserts
// `rows_per_txn` related rows with ids rows_per_txn*(t-1)+1 .. rows_per_txn*t,
// a = id * 7, b = "v<id>". Each session writes its OWN database file, so
// sessions are isolated by construction at the SQL layer and interleave only
// on the shared device array below.
#ifndef XFTL_HOST_SESSION_H_
#define XFTL_HOST_SESSION_H_

#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "sql/database.h"

namespace xftl::host {

struct SessionConfig {
  // Session id, >= 1 (0 means "untagged" throughout the trace subsystem).
  uint32_t id = 1;
  // Transactions this session will dispatch in total.
  uint64_t txns = 100;
  // Rows inserted per transaction (3 = the crash-sweep shape).
  uint32_t rows_per_txn = 3;
  // Wrap the inserts in BEGIN/COMMIT (3 statements of parse/plan CPU) or
  // run a bare auto-committing statement stream (throughput benches).
  bool explicit_txn = true;
  // Arrival model. Open loop: a Poisson process at `rate_per_sec`,
  // independent of completions — queueing delay shows up in latency.
  // Closed loop: the next transaction arrives `think_time` after the
  // previous one completed.
  bool open_loop = true;
  double rate_per_sec = 100.0;
  SimNanos think_time = 0;
  // Seed for this session's arrival sampling (combine with id for fleets).
  uint64_t seed = 1;
  // After a failed transaction, roll the connection back (best effort) so
  // the next dispatch starts clean — degraded-array runs where failures are
  // expected and the session keeps going (scheduler continue-on-error).
  bool rollback_on_error = false;
  // Read-only session: each dispatch runs BEGIN READONLY, scans the whole
  // table, verifies the snapshot (integrity a = id*7, whole transactions
  // only, prefix ids, row count never shrinking across dispatches), and
  // COMMITs. The session's db must be a connection onto ANOTHER session's
  // database file — the writer it reads behind. Init() is a no-op (the
  // writer owns the schema), and committed() counts clean read transactions.
  bool read_only = false;
};

class Session {
 public:
  // `db` is not owned; the caller (harness / test / bench) keeps it alive
  // and handles crash-abandon + reopen.
  Session(const SessionConfig& config, sql::Database* db);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Creates the session's table. Call once after the database is opened
  // (idempotence is not needed: each session owns its file).
  Status Init();

  // Runs the next application transaction to completion (the scheduler's
  // dispatch unit). Advances the shared clock through the whole stack.
  // On success the transaction was acknowledged committed.
  Status RunTxn();

  // Samples the gap from this arrival to the next (exponential under open
  // loop, think_time under closed loop). Deterministic per seed.
  SimNanos NextInterarrival();

  // Called by the scheduler with the arrival->completion span.
  void NoteLatency(SimNanos latency) { latency_.Add(latency); }

  const SessionConfig& config() const { return config_; }
  uint32_t id() const { return config_.id; }
  bool Done() const { return dispatched_ >= config_.txns; }
  uint64_t dispatched() const { return dispatched_; }
  // Transactions acknowledged committed (<= dispatched; the difference is a
  // dispatch that died mid-flight, e.g. at a power cut).
  uint64_t committed() const { return committed_; }
  const Histogram& latency() const { return latency_; }

  sql::Database* db() { return db_; }
  // Crash handling: forget the connection (the database object is being
  // abandoned by its owner); the committed/dispatched counts survive for
  // post-recovery verification.
  void DetachDb() { db_ = nullptr; }
  void AttachDb(sql::Database* db) { db_ = db; }

  // Post-recovery ACID check, crash-sweep style, against a REOPENED
  // database: integrity (a = id*7, b = "v<id>"), atomicity (whole
  // transactions only), prefix ordering, and durability (>= `acked`
  // transactions survive; pass the session's committed() from before the
  // cut). Returns the number of surviving transactions.
  static StatusOr<uint64_t> VerifyRecovered(sql::Database* db,
                                            uint32_t rows_per_txn,
                                            uint64_t acked);

  // Rows the last successful read-only dispatch saw (read_only sessions).
  uint64_t rows_seen() const { return rows_seen_; }

 private:
  // One read-only dispatch: BEGIN READONLY + full-scan + verify + COMMIT.
  Status RunReadTxn();
  const SessionConfig config_;
  sql::Database* db_;
  Rng rng_;
  uint64_t dispatched_ = 0;
  uint64_t committed_ = 0;
  uint64_t rows_seen_ = 0;
  Histogram latency_;
};

}  // namespace xftl::host

#endif  // XFTL_HOST_SESSION_H_
