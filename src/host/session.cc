#include "host/session.h"

#include <cmath>
#include <set>

namespace xftl::host {

Session::Session(const SessionConfig& config, sql::Database* db)
    : config_(config), db_(db), rng_(config.seed ^ (uint64_t(config.id) << 32)) {
  CHECK_GE(config.id, 1u);
  CHECK_GE(config.rows_per_txn, 1u);
}

Status Session::Init() {
  if (db_ == nullptr) return Status::FailedPrecondition("session has no db");
  if (config_.read_only) return Status::OK();  // the writer owns the schema
  return db_->Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, a INT, b TEXT)")
      .status();
}

Status Session::RunReadTxn() {
  dispatched_++;
  XFTL_RETURN_IF_ERROR(db_->Exec("BEGIN READONLY").status());
  auto rows = db_->Exec("SELECT id, a, b FROM t ORDER BY id");
  Status s = rows.status();
  if (s.ok()) {
    // Snapshot consistency: the reader must see whole committed
    // transactions of the crash-sweep shape, never a torn or regressed
    // state, no matter what the writer is doing right now.
    std::set<int64_t> ids;
    for (const sql::Row& row : rows->rows) {
      int64_t id = row[0].AsInt();
      if (row[1].AsInt() != id * 7 ||
          row[2].AsText() != "v" + std::to_string(id)) {
        s = Status::Corruption("snapshot integrity violated for id " +
                               std::to_string(id));
        break;
      }
      ids.insert(id);
    }
    if (s.ok() && ids.size() % config_.rows_per_txn != 0) {
      s = Status::Corruption("snapshot saw a torn transaction (" +
                             std::to_string(ids.size()) + " rows)");
    }
    if (s.ok() && !ids.empty() &&
        (*ids.begin() != 1 || *ids.rbegin() != int64_t(ids.size()))) {
      s = Status::Corruption("snapshot saw a non-prefix id set");
    }
    if (s.ok() && ids.size() < rows_seen_) {
      s = Status::Corruption("snapshot went backwards (" +
                             std::to_string(ids.size()) + " rows after " +
                             std::to_string(rows_seen_) + ")");
    }
    if (s.ok()) rows_seen_ = ids.size();
  }
  Status end = db_->Commit();  // closes the read transaction either way
  if (s.ok()) s = end;
  if (s.ok()) committed_++;
  return s;
}

Status Session::RunTxn() {
  if (db_ == nullptr) return Status::FailedPrecondition("session has no db");
  if (config_.read_only) return RunReadTxn();
  const uint64_t txn = dispatched_ + 1;
  const uint64_t rows = config_.rows_per_txn;
  std::string sql;
  if (config_.explicit_txn) sql = "BEGIN;";
  for (uint64_t id = rows * (txn - 1) + 1; id <= rows * txn; ++id) {
    sql += " INSERT INTO t VALUES (" + std::to_string(id) + ", " +
           std::to_string(id * 7) + ", 'v" + std::to_string(id) + "');";
  }
  if (config_.explicit_txn) sql += " COMMIT;";
  dispatched_++;
  Status s = db_->Exec(sql).status();
  if (s.ok()) {
    committed_++;
  } else if (config_.rollback_on_error && db_->in_transaction()) {
    // Failure left the connection mid-transaction; clear it so the next
    // dispatch is not poisoned by a stale BEGIN.
    (void)db_->Rollback();
  }
  return s;
}

SimNanos Session::NextInterarrival() {
  if (!config_.open_loop) return config_.think_time;
  CHECK_GT(config_.rate_per_sec, 0.0);
  // Exponential inter-arrival; 1 - U keeps log() away from zero.
  double u = rng_.NextDouble();
  double gap_sec = -std::log(1.0 - u) / config_.rate_per_sec;
  return SimNanos(gap_sec * 1e9);
}

StatusOr<uint64_t> Session::VerifyRecovered(sql::Database* db,
                                            uint32_t rows_per_txn,
                                            uint64_t acked) {
  auto rows = db->Exec("SELECT id, a, b FROM t ORDER BY id");
  XFTL_RETURN_IF_ERROR(rows.status());
  std::set<int64_t> ids;
  for (const sql::Row& row : rows->rows) {
    int64_t id = row[0].AsInt();
    if (row[1].AsInt() != id * 7 ||
        row[2].AsText() != "v" + std::to_string(id)) {
      return Status::Corruption("integrity violated for id " +
                                std::to_string(id));
    }
    ids.insert(id);
  }
  if (ids.size() % rows_per_txn != 0) {
    return Status::Corruption("a transaction was torn (" +
                              std::to_string(ids.size()) + " rows, " +
                              std::to_string(rows_per_txn) + " per txn)");
  }
  const uint64_t survived = ids.size() / rows_per_txn;
  for (uint64_t txn = 1; txn <= survived; ++txn) {
    for (uint64_t id = uint64_t(rows_per_txn) * (txn - 1) + 1;
         id <= uint64_t(rows_per_txn) * txn; ++id) {
      if (ids.count(int64_t(id)) == 0) {
        return Status::Corruption("non-prefix survival at txn " +
                                  std::to_string(txn));
      }
    }
  }
  if (survived < acked) {
    return Status::Corruption("acknowledged transactions lost (acked " +
                              std::to_string(acked) + ", survived " +
                              std::to_string(survived) + ")");
  }
  if (survived > acked + 1) {
    return Status::Corruption("unacknowledged transactions surfaced");
  }
  return survived;
}

}  // namespace xftl::host
